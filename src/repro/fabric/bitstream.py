"""Frame-based configuration model and bitstream generation.

Spartan-3 configuration memory is organised in *frames*, the atomic unit of
(re)configuration; one CLB column is covered by a fixed number of frames.
A *partial* bitstream therefore addresses whole columns, which is why
reconfigurable regions on Spartan-3 span full device columns.

The generated bitstreams are structurally faithful — sync word, type-1
packets writing the frame address register (FAR), frame data input (FDRI)
words, and a CRC — so that the configuration-port models in
:mod:`repro.reconfig.ports` can parse them like real hardware would.  The
frame *payload* is synthetic (derived from a seeded hash of the module name),
since the actual LUT equations do not influence any quantity the paper
evaluates; what matters is that sizes and timings come out right.
"""

from __future__ import annotations

import hashlib
import struct
import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.fabric.device import FRAMES_PER_CLB_COLUMN, DeviceSpec
from repro.fabric.grid import Region

#: Xilinx configuration sync word, common to the whole SelectMAP family.
SYNC_WORD = 0xAA995566

#: Configuration register addresses (subset of the Spartan-3 set).
REG_CMD = 0x0
REG_FAR = 0x1
REG_FDRI = 0x2
REG_CRC = 0x3

CMD_WCFG = 0x1  # write configuration
CMD_LFRM = 0x3  # last frame / flush
CMD_DESYNC = 0xD


def _type1_header(register: int, word_count: int) -> int:
    """Build a type-1 packet header word (write opcode)."""
    if word_count >= (1 << 11):
        raise ValueError(f"type-1 packet too long ({word_count} words)")
    return (0x1 << 29) | (0x2 << 27) | ((register & 0x3FFF) << 13) | word_count


def parse_type1_header(word: int) -> tuple:
    """Decode a type-1 header into (register, word_count).

    Raises
    ------
    ValueError
        If the word is not a type-1 write header.
    """
    if (word >> 29) != 0x1 or ((word >> 27) & 0x3) != 0x2:
        raise ValueError(f"not a type-1 write header: {word:#010x}")
    return ((word >> 13) & 0x3FFF, word & 0x7FF)


@dataclass(frozen=True)
class Frame:
    """One configuration frame: its address and payload words."""

    address: int
    words: tuple

    @property
    def byte_size(self) -> int:
        return 4 * len(self.words)


@dataclass
class Bitstream:
    """A full or partial configuration bitstream."""

    device_name: str
    frames: List[Frame]
    partial: bool
    description: str = ""

    @property
    def frame_count(self) -> int:
        return len(self.frames)

    @property
    def payload_bytes(self) -> int:
        """Bytes of frame data (excluding packet overhead)."""
        return sum(frame.byte_size for frame in self.frames)

    @property
    def total_bytes(self) -> int:
        """Total on-the-wire size: payload plus packet/command overhead."""
        return len(self.to_bytes())

    def to_bytes(self) -> bytes:
        """Serialise to the on-the-wire word stream."""
        words: List[int] = [0xFFFFFFFF, SYNC_WORD]
        words.append(_type1_header(REG_CMD, 1))
        words.append(CMD_WCFG)
        for frame in self.frames:
            words.append(_type1_header(REG_FAR, 1))
            words.append(frame.address)
            words.append(_type1_header(REG_FDRI, len(frame.words)))
            words.extend(frame.words)
        words.append(_type1_header(REG_CMD, 1))
        words.append(CMD_LFRM)
        crc = zlib.crc32(struct.pack(f">{len(words)}I", *words)) & 0xFFFFFFFF
        words.append(_type1_header(REG_CRC, 1))
        words.append(crc)
        words.append(_type1_header(REG_CMD, 1))
        words.append(CMD_DESYNC)
        return struct.pack(f">{len(words)}I", *words)

    @classmethod
    def from_bytes(cls, raw: bytes, device_name: str = "?") -> "Bitstream":
        """Parse a serialised bitstream back into frames, verifying the CRC.

        Raises
        ------
        ValueError
            On malformed packets or CRC mismatch.
        """
        if len(raw) % 4:
            raise ValueError("bitstream length not word aligned")
        words = list(struct.unpack(f">{len(raw) // 4}I", raw))
        try:
            sync_at = words.index(SYNC_WORD)
        except ValueError:
            raise ValueError("sync word not found") from None
        i = sync_at + 1
        frames: List[Frame] = []
        far: Optional[int] = None
        crc_ok = False
        while i < len(words):
            reg, count = parse_type1_header(words[i])
            payload = words[i + 1 : i + 1 + count]
            if len(payload) != count:
                raise ValueError("truncated packet")
            if reg == REG_FAR:
                far = payload[0]
            elif reg == REG_FDRI:
                if far is None:
                    raise ValueError("FDRI write before FAR set")
                frames.append(Frame(far, tuple(payload)))
                far = None
            elif reg == REG_CRC:
                expect = zlib.crc32(struct.pack(f">{i}I", *words[:i])) & 0xFFFFFFFF
                if payload[0] != expect:
                    raise ValueError(
                        f"CRC mismatch: stream {payload[0]:#010x} != computed {expect:#010x}"
                    )
                crc_ok = True
            i += 1 + count
        if not crc_ok:
            raise ValueError("bitstream carries no CRC record")
        return cls(device_name=device_name, frames=frames, partial=True)


class BitstreamGenerator:
    """Produces full and partial bitstreams for one device."""

    def __init__(self, device: DeviceSpec):
        self.device = device

    @property
    def frame_words(self) -> int:
        return self.device.frame_bits // 32

    def column_frame_addresses(self, column: int) -> List[int]:
        """Frame addresses covering one CLB column (FAR encoding: column in
        the upper bits, minor frame index in the lower)."""
        if not 0 <= column < self.device.clb_columns:
            raise ValueError(f"column {column} outside {self.device.name}")
        return [(column << 8) | minor for minor in range(FRAMES_PER_CLB_COLUMN)]

    def _frame_payload(self, seed: str, address: int) -> tuple:
        digest = hashlib.sha256(f"{seed}:{address}".encode()).digest()
        need = self.frame_words * 4
        blob = (digest * (need // len(digest) + 1))[:need]
        return tuple(struct.unpack(f">{self.frame_words}I", blob))

    def partial_for_region(self, region: Region, module_name: str) -> Bitstream:
        """Partial bitstream reconfiguring the columns a region spans.

        Raises
        ------
        ValueError
            If the region is not column aligned (Spartan-3 frames always
            configure full columns).
        """
        if not region.is_column_aligned(self.device):
            raise ValueError(
                f"{region} is not column aligned on {self.device.name}; "
                "Spartan-3 partial bitstreams must cover full columns"
            )
        frames = [
            Frame(addr, self._frame_payload(module_name, addr))
            for column in region.columns
            for addr in self.column_frame_addresses(column)
        ]
        return Bitstream(
            device_name=self.device.name,
            frames=frames,
            partial=True,
            description=f"partial:{module_name}",
        )

    def full(self, design_name: str = "top") -> Bitstream:
        """Full-device bitstream (initial configuration)."""
        frames = [
            Frame(addr, self._frame_payload(design_name, addr))
            for column in range(self.device.clb_columns)
            for addr in self.column_frame_addresses(column)
        ]
        # IOB/BRAM/GCLK columns beyond the CLB array, addressed past the
        # last CLB column.
        extra = self.device.frame_count - len(frames)
        base = self.device.clb_columns << 8
        for k in range(max(0, extra)):
            addr = base + k
            frames.append(Frame(addr, self._frame_payload(design_name, addr)))
        return Bitstream(
            device_name=self.device.name,
            frames=frames,
            partial=False,
            description=f"full:{design_name}",
        )
