"""Spartan-3 device catalog.

Geometry and configuration numbers follow the Xilinx DS099 data sheet (the
paper's reference [2]): CLB array sizes, slice counts (4 slices per CLB),
18-Kbit block RAM counts, dedicated 18x18 multipliers, DCMs, and total
configuration bit counts.  Quiescent currents and unit prices are calibrated
to be representative of the 2008 time frame; the paper's arguments only rely
on their monotone scaling with device size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


#: Core supply voltage of the Spartan-3 family (VCCINT), volts.
VCCINT = 1.2

#: Configuration frames per CLB column on Spartan-3 (DS099 configuration
#: details; used to size partial bitstreams for column-aligned regions).
FRAMES_PER_CLB_COLUMN = 19


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one FPGA device.

    Attributes
    ----------
    name:
        Device name, e.g. ``"XC3S400"``.
    clb_columns, clb_rows:
        CLB array dimensions.  Each CLB holds :attr:`slices_per_clb` slices.
    bram_blocks:
        Number of 18-Kbit block RAMs.
    multipliers:
        Number of dedicated 18x18 multipliers.
    dcms:
        Number of Digital Clock Managers.
    config_bits:
        Total configuration bitstream size in bits (full device).
    quiescent_current_ma:
        Typical quiescent (static) core current in mA at nominal VCCINT and
        25 degC.  Static power grows with die size; this is the lever the
        paper's approach 2 pulls by fitting a smaller device.
    price_usd:
        Representative unit price (volume, 2008).  Lever of the "cost" half
        of the paper's title.
    """

    name: str
    clb_columns: int
    clb_rows: int
    bram_blocks: int
    multipliers: int
    dcms: int
    config_bits: int
    quiescent_current_ma: float
    price_usd: float
    slices_per_clb: int = 4
    bram_kbits_per_block: int = 18

    @property
    def clb_count(self) -> int:
        """Total number of CLBs in the array."""
        return self.clb_columns * self.clb_rows

    @property
    def slices(self) -> int:
        """Total number of logic slices."""
        return self.clb_count * self.slices_per_clb

    @property
    def bram_kbits(self) -> int:
        """Total block RAM capacity in Kbits."""
        return self.bram_blocks * self.bram_kbits_per_block

    @property
    def bram_bytes(self) -> int:
        """Total block RAM capacity in bytes (data bits only)."""
        return self.bram_kbits * 1024 // 8

    @property
    def frame_count(self) -> int:
        """Total number of configuration frames (approximate, derived from
        the per-CLB-column frame count plus IOB/BRAM/GCLK columns)."""
        # CLB columns plus two IOB columns, the GCLK column and one frame
        # column pair per BRAM column (DS099 layout, simplified).
        bram_columns = max(1, self.bram_blocks // self.clb_rows)
        extra_columns = 3 + 2 * bram_columns
        return FRAMES_PER_CLB_COLUMN * (self.clb_columns + extra_columns)

    @property
    def frame_bits(self) -> int:
        """Bits per configuration frame (config_bits spread over frames,
        rounded up to a 32-bit word multiple)."""
        raw = self.config_bits / self.frame_count
        return int(math.ceil(raw / 32.0)) * 32

    @property
    def config_bytes(self) -> int:
        """Full-device bitstream size in bytes."""
        return (self.config_bits + 7) // 8

    @property
    def static_power_w(self) -> float:
        """Typical static (quiescent) core power in watts."""
        return self.quiescent_current_ma * 1e-3 * VCCINT

    def fits(self, slices: int = 0, bram_blocks: int = 0, multipliers: int = 0) -> bool:
        """Return ``True`` when the given resource demand fits this device."""
        return (
            slices <= self.slices
            and bram_blocks <= self.bram_blocks
            and multipliers <= self.multipliers
        )

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"{self.name} ({self.clb_columns}x{self.clb_rows} CLBs, "
            f"{self.slices} slices, {self.bram_blocks} BRAMs)"
        )


#: The Spartan-3 family (DS099 Table 1), smallest to largest.
SPARTAN3 = (
    DeviceSpec("XC3S50", 12, 16, 4, 4, 2, 439_264, 8.0, 3.50),
    DeviceSpec("XC3S200", 20, 24, 12, 12, 4, 1_047_616, 12.0, 6.20),
    DeviceSpec("XC3S400", 28, 32, 16, 16, 4, 1_699_136, 18.0, 10.40),
    DeviceSpec("XC3S1000", 40, 48, 24, 24, 4, 3_223_488, 35.0, 22.10),
    DeviceSpec("XC3S1500", 52, 64, 32, 32, 4, 5_214_784, 50.0, 38.00),
    DeviceSpec("XC3S2000", 64, 80, 40, 40, 4, 7_673_024, 70.0, 59.50),
    DeviceSpec("XC3S4000", 72, 96, 96, 96, 4, 11_316_864, 100.0, 94.00),
    DeviceSpec("XC3S5000", 80, 104, 104, 104, 4, 13_271_936, 120.0, 128.00),
)

_BY_NAME = {spec.name: spec for spec in SPARTAN3}


def get_device(name: str) -> DeviceSpec:
    """Look up a Spartan-3 device by name (case-insensitive).

    Raises
    ------
    KeyError
        If the name is not in the catalog.
    """
    key = name.upper()
    if key not in _BY_NAME:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown device {name!r}; known devices: {known}")
    return _BY_NAME[key]


def smallest_fitting_device(
    slices: int,
    bram_blocks: int = 0,
    multipliers: int = 0,
    utilization_cap: float = 1.0,
) -> DeviceSpec:
    """Return the smallest Spartan-3 device that fits the given demand.

    Parameters
    ----------
    slices, bram_blocks, multipliers:
        Resource demand of the design.
    utilization_cap:
        Fraction of the device's slices that may be used (routability head
        room).  ``1.0`` allows a completely full device.

    Raises
    ------
    ValueError
        If no device in the family is large enough.
    """
    if not 0.0 < utilization_cap <= 1.0:
        raise ValueError(f"utilization_cap must be in (0, 1], got {utilization_cap}")
    for spec in SPARTAN3:
        if spec.fits(
            slices=int(math.ceil(slices / utilization_cap)),
            bram_blocks=bram_blocks,
            multipliers=multipliers,
        ):
            return spec
    raise ValueError(
        f"no Spartan-3 device fits {slices} slices / {bram_blocks} BRAMs / "
        f"{multipliers} multipliers"
    )
