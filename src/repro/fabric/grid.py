"""CLB/slice grid geometry of one device.

The grid provides slice coordinates, rectangular regions (used for the
static/dynamic floorplan of the reconfigurable system), and distance
helpers used by the placer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.fabric.device import DeviceSpec


@dataclass(frozen=True, order=True)
class SliceCoord:
    """Coordinate of one slice: CLB column ``x``, CLB row ``y``, and slice
    index ``idx`` within the CLB (0..slices_per_clb-1)."""

    x: int
    y: int
    idx: int

    @property
    def clb(self) -> Tuple[int, int]:
        """The (x, y) coordinate of the CLB containing this slice."""
        return (self.x, self.y)

    def manhattan(self, other: "SliceCoord") -> int:
        """Manhattan distance in CLBs to another slice."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"SLICE_X{self.x}Y{self.y}.{self.idx}"


@dataclass(frozen=True)
class Region:
    """A rectangle of CLBs, inclusive on both ends.

    Regions describe floorplan areas: the static side, the dynamic side, and
    individual reconfigurable slots.  Spartan-3 configuration is column
    based, so reconfigurable regions should span full columns
    (:meth:`is_column_aligned`).
    """

    x_min: int
    y_min: int
    x_max: int
    y_max: int

    def __post_init__(self) -> None:
        if self.x_min > self.x_max or self.y_min > self.y_max:
            raise ValueError(f"degenerate region {self}")
        if self.x_min < 0 or self.y_min < 0:
            raise ValueError(f"negative region origin {self}")

    @property
    def width(self) -> int:
        return self.x_max - self.x_min + 1

    @property
    def height(self) -> int:
        return self.y_max - self.y_min + 1

    @property
    def clb_count(self) -> int:
        return self.width * self.height

    @property
    def columns(self) -> range:
        """CLB column indices covered by the region."""
        return range(self.x_min, self.x_max + 1)

    def contains(self, coord: SliceCoord) -> bool:
        """Whether the slice lies inside this region."""
        return self.x_min <= coord.x <= self.x_max and self.y_min <= coord.y <= self.y_max

    def contains_clb(self, x: int, y: int) -> bool:
        return self.x_min <= x <= self.x_max and self.y_min <= y <= self.y_max

    def overlaps(self, other: "Region") -> bool:
        """Whether two regions share at least one CLB."""
        return not (
            self.x_max < other.x_min
            or other.x_max < self.x_min
            or self.y_max < other.y_min
            or other.y_max < self.y_min
        )

    def is_column_aligned(self, device: DeviceSpec) -> bool:
        """Whether the region spans full device columns (required for a
        Spartan-3 reconfigurable region, whose frames configure whole
        columns)."""
        return self.y_min == 0 and self.y_max == device.clb_rows - 1

    def slice_capacity(self, device: DeviceSpec) -> int:
        """Number of slices the region can hold."""
        return self.clb_count * device.slices_per_clb

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"Region[X{self.x_min}:{self.x_max}, Y{self.y_min}:{self.y_max}]"


class Grid:
    """Slice-level view of one device's CLB array."""

    def __init__(self, device: DeviceSpec):
        self.device = device

    @property
    def full_region(self) -> Region:
        """The region covering the entire CLB array."""
        return Region(0, 0, self.device.clb_columns - 1, self.device.clb_rows - 1)

    def is_valid(self, coord: SliceCoord) -> bool:
        """Whether the coordinate exists on this device."""
        return (
            0 <= coord.x < self.device.clb_columns
            and 0 <= coord.y < self.device.clb_rows
            and 0 <= coord.idx < self.device.slices_per_clb
        )

    def slices_in(self, region: Region) -> Iterator[SliceCoord]:
        """Iterate all slice coordinates inside a region (raster order)."""
        self._check_region(region)
        for y in range(region.y_min, region.y_max + 1):
            for x in range(region.x_min, region.x_max + 1):
                for idx in range(self.device.slices_per_clb):
                    yield SliceCoord(x, y, idx)

    def all_slices(self) -> Iterator[SliceCoord]:
        """Iterate every slice on the device."""
        return self.slices_in(self.full_region)

    def column_region(self, x_min: int, x_max: int) -> Region:
        """A full-height region spanning CLB columns ``x_min..x_max`` —
        the shape of a Spartan-3 reconfigurable slot."""
        return Region(x_min, 0, x_max, self.device.clb_rows - 1)

    def split_columns(self, boundary: int) -> Tuple[Region, Region]:
        """Split the array at a column boundary into (left, right) full
        height regions.  ``boundary`` is the first column of the right part.
        """
        if not 0 < boundary < self.device.clb_columns:
            raise ValueError(
                f"boundary {boundary} outside (0, {self.device.clb_columns})"
            )
        left = self.column_region(0, boundary - 1)
        right = self.column_region(boundary, self.device.clb_columns - 1)
        return left, right

    def _check_region(self, region: Region) -> None:
        if (
            region.x_max >= self.device.clb_columns
            or region.y_max >= self.device.clb_rows
        ):
            raise ValueError(f"{region} exceeds {self.device.name} array")


def bounding_region(coords: List[SliceCoord]) -> Region:
    """Smallest region containing all given slices.

    Raises
    ------
    ValueError
        If ``coords`` is empty.
    """
    if not coords:
        raise ValueError("bounding_region of no slices")
    xs = [c.x for c in coords]
    ys = [c.y for c in coords]
    return Region(min(xs), min(ys), max(xs), max(ys))
