"""Routing wire segment types.

Spartan-3 interconnect offers several segment lengths (the paper's §4.3):
*direct* connections to neighbouring CLBs, *double* lines spanning two CLBs,
*hex* lines spanning six, and *long* lines spanning the device.  Longer lines
give fewer switch-box hops (higher performance) but carry more metal and more
attached programmable interconnect points, i.e. **higher capacitance and
therefore higher dynamic power** — the physical fact the paper's third
methodology exploits by re-routing high-activity nets onto shorter segments.

Electrical values are calibrated for a 90 nm fabric so that one long line
carries roughly the capacitance of eight direct segments while covering
24 CLBs; the paper only relies on this qualitative ordering.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WireType:
    """One class of routing segment.

    Attributes
    ----------
    name:
        ``"direct"``, ``"double"``, ``"hex"`` or ``"long"``.
    span:
        Number of CLBs the segment crosses in one hop.
    capacitance_pf:
        Total switched capacitance of one segment (wire + programmable
        interconnect points), picofarads.
    resistance_ohm:
        Series resistance of one segment, ohms.
    intrinsic_delay_ns:
        Buffer + RC delay contributed by one segment, nanoseconds.
    """

    name: str
    span: int
    capacitance_pf: float
    resistance_ohm: float
    intrinsic_delay_ns: float

    @property
    def capacitance_per_clb_pf(self) -> float:
        """Capacitance per CLB of distance covered — the figure of merit for
        power-aware routing (lower is better)."""
        return self.capacitance_pf / self.span

    @property
    def delay_per_clb_ns(self) -> float:
        """Delay per CLB of distance covered — the figure of merit for
        performance routing (lower is better)."""
        return self.intrinsic_delay_ns / self.span


DIRECT = WireType("direct", span=1, capacitance_pf=0.10, resistance_ohm=90.0, intrinsic_delay_ns=0.20)
DOUBLE = WireType("double", span=2, capacitance_pf=0.22, resistance_ohm=140.0, intrinsic_delay_ns=0.28)
HEX = WireType("hex", span=6, capacitance_pf=0.72, resistance_ohm=300.0, intrinsic_delay_ns=0.46)
LONG = WireType("long", span=24, capacitance_pf=3.10, resistance_ohm=900.0, intrinsic_delay_ns=0.90)

#: All wire types, shortest first.
WIRE_TYPES = (DIRECT, DOUBLE, HEX, LONG)

#: Per-channel segment counts: how many segments of each type leave one
#: switch box in one direction.  These bound routing congestion.
CHANNEL_CAPACITY = {
    "direct": 8,
    "double": 8,
    "hex": 6,
    "long": 3,
}

#: Input pin capacitance of a slice (LUT input + local interconnect), pF.
PIN_CAPACITANCE_PF = 0.035

_BY_NAME = {w.name: w for w in WIRE_TYPES}


def wire_type_by_name(name: str) -> WireType:
    """Look up a wire type by name.

    Raises
    ------
    KeyError
        If the name is not one of direct/double/hex/long.
    """
    key = name.lower()
    if key not in _BY_NAME:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown wire type {name!r}; known types: {known}")
    return _BY_NAME[key]
