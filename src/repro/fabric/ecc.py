"""Per-frame SECDED error-correcting codes.

Later Xilinx families carry a FRAME_ECC primitive: every configuration
frame stores Hamming parity, so a readback pass can *correct* single-bit
upsets without comparing against a golden image in external memory — the
scrubber only needs the small per-frame ECC table, not the whole
bitstream.  This module implements that scheme for the frame model:
single-bit errors are located and corrected, double-bit errors are
detected (and escalate to a golden-image reload).

Encoding: classic Hamming-position syndrome — the XOR of the (1-based)
positions of all set data bits — extended with an overall parity bit for
double-error detection.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fabric.bitstream import Bitstream, Frame


class EccStatus(enum.Enum):
    """Outcome of one frame check."""

    OK = "ok"
    CORRECTED = "corrected"
    UNCORRECTABLE = "uncorrectable"


def _position_syndrome(words: Sequence[int]) -> Tuple[int, int]:
    """(XOR of set-bit positions, overall parity) over a frame's words.

    Bit ``b`` of word ``w`` sits at position ``32*w + b + 1`` (1-based so
    position 0 means 'no error').
    """
    syndrome = 0
    parity = 0
    base = 1
    for word in words:
        w = word & 0xFFFFFFFF
        while w:
            low = w & -w
            bit = low.bit_length() - 1
            syndrome ^= base + bit
            parity ^= 1
            w ^= low
        base += 32
    return syndrome, parity


@dataclass(frozen=True)
class FrameEcc:
    """Stored check bits of one frame."""

    syndrome: int
    parity: int


def encode_frame(frame: Frame) -> FrameEcc:
    """Compute the ECC of a frame's current content."""
    syndrome, parity = _position_syndrome(frame.words)
    return FrameEcc(syndrome=syndrome, parity=parity)


def check_frame(words: Sequence[int], ecc: FrameEcc) -> Tuple[EccStatus, Optional[int]]:
    """Check (possibly corrupted) frame words against stored ECC.

    Returns
    -------
    (status, bit_position)
        ``bit_position`` is the 0-based flipped bit for CORRECTED, else
        None.
    """
    syndrome, parity = _position_syndrome(words)
    diff = syndrome ^ ecc.syndrome
    parity_flip = parity ^ ecc.parity
    if diff == 0 and parity_flip == 0:
        return (EccStatus.OK, None)
    if diff != 0 and parity_flip == 1:
        position = diff - 1
        if position >= 32 * len(words):
            return (EccStatus.UNCORRECTABLE, None)
        return (EccStatus.CORRECTED, position)
    # Zero syndrome with odd parity, or nonzero syndrome with even parity:
    # an even number of flips (>= 2) — beyond single-bit correction.
    return (EccStatus.UNCORRECTABLE, None)


def correct_words(words: Sequence[int], bit_position: int) -> List[int]:
    """Flip one bit back; returns the corrected word list.

    Raises
    ------
    ValueError
        If the position is outside the frame.
    """
    if not 0 <= bit_position < 32 * len(words):
        raise ValueError(f"bit position {bit_position} outside frame")
    corrected = list(words)
    corrected[bit_position // 32] ^= 1 << (bit_position % 32)
    return corrected


class EccScrubber:
    """Golden-free scrubbing: per-frame ECC instead of a golden image.

    Parameters
    ----------
    memory:
        The :class:`repro.fabric.faults.ConfigurationMemory` under
        protection.
    """

    def __init__(self, memory):
        self.memory = memory
        self._ecc: Dict[int, FrameEcc] = {}

    def protect(self, bitstream: Bitstream) -> None:
        """Record the ECC of every frame in a loaded bitstream."""
        for frame in bitstream.frames:
            self._ecc[frame.address] = encode_frame(frame)

    @property
    def protected_frames(self) -> int:
        return len(self._ecc)

    def scrub(self) -> Dict[str, List[int]]:
        """One pass over all protected frames.

        Returns a dict with the frame addresses per outcome:
        ``{"ok": [...], "corrected": [...], "uncorrectable": [...]}``.
        Corrected frames are written back into the memory.

        Raises
        ------
        ValueError
            If nothing is protected.
        """
        if not self._ecc:
            raise ValueError("no frames protected; call protect() first")
        outcome: Dict[str, List[int]] = {"ok": [], "corrected": [], "uncorrectable": []}
        for address, ecc in sorted(self._ecc.items()):
            words = self.memory.frame(address)
            status, position = check_frame(words, ecc)
            if status is EccStatus.OK:
                outcome["ok"].append(address)
            elif status is EccStatus.CORRECTED:
                fixed = correct_words(words, position)
                self.memory.load(
                    Bitstream(device_name="?", frames=[Frame(address, tuple(fixed))], partial=True)
                )
                outcome["corrected"].append(address)
            else:
                outcome["uncorrectable"].append(address)
        return outcome
