"""Configuration-memory fault injection.

The paper's introduction motivates the FPGA move with upcoming
"requirements on failure detection and recovery".  SRAM-based FPGAs are
susceptible to single-event upsets (SEUs): a particle strike flips a bit
in configuration memory, silently changing a LUT equation or a routing
switch.  This module injects such faults into the frame-based
configuration model so the detection/recovery machinery in
:mod:`repro.reconfig.readback` has something real to find.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fabric.bitstream import Bitstream, Frame


@dataclass(frozen=True)
class InjectedFault:
    """One injected configuration upset."""

    frame_address: int
    word_index: int
    bit_index: int

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"SEU@frame {self.frame_address:#x} word {self.word_index} bit {self.bit_index}"


class ConfigurationMemory:
    """The live configuration SRAM of one device region.

    Holds the *current* frame contents (loaded from bitstreams), supports
    fault injection, and serves readback.  This is the ground truth the
    readback scrubber compares against the golden bitstream.
    """

    def __init__(self):
        self._frames: Dict[int, List[int]] = {}
        self.injected: List[InjectedFault] = []

    def load(self, bitstream: Bitstream) -> None:
        """Write a (partial) bitstream into configuration memory."""
        for frame in bitstream.frames:
            self._frames[frame.address] = list(frame.words)

    @property
    def frame_count(self) -> int:
        return len(self._frames)

    def frame(self, address: int) -> Tuple[int, ...]:
        """Read back one frame.

        Raises
        ------
        KeyError
            If the frame was never configured.
        """
        if address not in self._frames:
            raise KeyError(f"frame {address:#x} not configured")
        return tuple(self._frames[address])

    def readback(self, addresses: Optional[List[int]] = None) -> List[Frame]:
        """Read back frames (all configured ones by default)."""
        if addresses is None:
            addresses = sorted(self._frames)
        return [Frame(addr, self.frame(addr)) for addr in addresses]

    def inject_seu(self, rng: Optional[random.Random] = None) -> InjectedFault:
        """Flip one random configuration bit.

        Raises
        ------
        ValueError
            If no frames are configured yet.
        """
        if not self._frames:
            raise ValueError("cannot inject a fault into empty configuration memory")
        rng = rng or random.Random()
        address = rng.choice(sorted(self._frames))
        words = self._frames[address]
        word_index = rng.randrange(len(words))
        bit_index = rng.randrange(32)
        words[word_index] ^= 1 << bit_index
        fault = InjectedFault(address, word_index, bit_index)
        self.injected.append(fault)
        return fault

    def inject_burst(self, size: int, rng: Optional[random.Random] = None) -> List[InjectedFault]:
        """Flip ``size`` random configuration bits (a multi-bit upset).

        Heavy-ion strikes and accumulating radiation dose upset several
        bits per event; the fault campaigns sweep this burst size as their
        intensity axis.  Bits are drawn independently, so a burst may
        revisit (and thereby revert) an earlier flip — exactly like real
        back-to-back upsets.

        Raises
        ------
        ValueError
            On a non-positive size or empty configuration memory.
        """
        if size < 1:
            raise ValueError(f"burst size must be >= 1, got {size}")
        return [self.inject_seu(rng) for _ in range(size)]

    def inject_at(self, address: int, word_index: int, bit_index: int) -> InjectedFault:
        """Flip a specific configuration bit (deterministic tests).

        Raises
        ------
        KeyError / IndexError / ValueError
            On invalid coordinates.
        """
        words = self._frames[address]
        if not 0 <= bit_index < 32:
            raise ValueError(f"bit index {bit_index} outside 0..31")
        words[word_index] ^= 1 << bit_index
        fault = InjectedFault(address, word_index, bit_index)
        self.injected.append(fault)
        return fault

    def corrupted_frames(self, golden: Bitstream) -> List[int]:
        """Frame addresses whose content differs from a golden bitstream
        (only frames the golden image covers are compared)."""
        bad = []
        for frame in golden.frames:
            if frame.address in self._frames and tuple(self._frames[frame.address]) != frame.words:
                bad.append(frame.address)
        return bad
