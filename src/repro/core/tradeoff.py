"""Whole-system cost/power/performance comparison across the
implementation variants — the table the paper's conclusions gesture at."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.app.system import CycleResult, SystemConfig, _BaseSystem


@dataclass
class SystemVariant:
    """One implementation variant under comparison."""

    label: str
    system: _BaseSystem

    def run(self, levels: Sequence[float]) -> List[CycleResult]:
        """One cycle per fill level, with the smoothing filter reset
        between levels (each level is an independent test point, not a
        continuous fill trajectory)."""
        results = []
        for level in levels:
            self.system.reset()
            results.append(self.system.run_cycle(level))
        return results


@dataclass(frozen=True)
class TradeoffRow:
    """Aggregated comparison row for one variant."""

    label: str
    device: str
    bom_cost_usd: float
    avg_power_mw: float
    processing_time_ms: float
    reconfig_time_ms: float
    max_level_error: float
    fits_period: bool


def compare_variants(
    variants: Sequence[SystemVariant],
    levels: Sequence[float] = (0.2, 0.5, 0.8),
) -> List[TradeoffRow]:
    """Run every variant over the same fill levels and aggregate.

    Raises
    ------
    ValueError
        On empty inputs.
    """
    if not variants:
        raise ValueError("need at least one variant")
    if not levels:
        raise ValueError("need at least one fill level")
    rows: List[TradeoffRow] = []
    for variant in variants:
        results = variant.run(levels)
        rows.append(
            TradeoffRow(
                label=variant.label,
                device=results[0].device,
                bom_cost_usd=variant.system.bom_cost_usd(),
                avg_power_mw=sum(r.avg_power_w for r in results) / len(results) * 1e3,
                processing_time_ms=sum(r.processing_time_s for r in results) / len(results) * 1e3,
                reconfig_time_ms=sum(r.reconfig_time_s for r in results) / len(results) * 1e3,
                max_level_error=max(r.level_error for r in results),
                fits_period=all(r.fits_period for r in results),
            )
        )
    return rows


def format_table(rows: Sequence[TradeoffRow]) -> str:
    """Render comparison rows as a fixed-width table."""
    header = (
        f"{'variant':<16} {'device':<14} {'BOM $':>7} {'power mW':>9} "
        f"{'proc ms':>9} {'reconf ms':>10} {'max err':>8} {'fits':>5}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.label:<16} {r.device:<14} {r.bom_cost_usd:>7.2f} {r.avg_power_mw:>9.2f} "
            f"{r.processing_time_ms:>9.4f} {r.reconfig_time_ms:>10.3f} "
            f"{r.max_level_error:>8.4f} {str(r.fits_period):>5}"
        )
    return "\n".join(lines)
