"""Automatic static/dynamic partitioning.

The paper's §3 points at reference [10] (Berthelot et al.): "Automatic
tools for the design of on-demand reconfigurable systems with real-time
requirements will be required in order to make dynamic reconfiguration
suitable for industrial applications in a long-term perspective."

This module is that tool for the measurement system's design space: given
the combined processing dataflow graph and a cycle deadline, it sweeps the
module partition count, sizes a device for each, evaluates static power,
BOM cost and per-cycle reconfiguration overhead, discards infeasible
points, and returns the optimum (and the whole Pareto front) for a chosen
objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.fabric.bitstream import BitstreamGenerator
from repro.power.model import static_power_w
from repro.reconfig.ports import ConfigPort, Icap
from repro.reconfig.scheduler import CYCLE_PERIOD_S
from repro.reconfig.slots import FloorplanError, smallest_device_for_plan
from repro.sysgen.compile import CompiledModule, split_into_modules
from repro.sysgen.graph import DataflowGraph


@dataclass(frozen=True)
class PartitionCandidate:
    """One evaluated design point."""

    module_count: int
    max_module_slices: int
    device: str
    device_price_usd: float
    static_power_w: float
    reconfig_time_per_cycle_s: float
    feasible: bool

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"{self.module_count} modules -> {self.device}: "
            f"{self.static_power_w * 1e3:.1f} mW static, "
            f"{self.reconfig_time_per_cycle_s * 1e3:.1f} ms reconfig/cycle, "
            f"{'feasible' if self.feasible else 'INFEASIBLE'}"
        )


@dataclass
class AutoPartitionResult:
    """Output of one automatic partitioning run."""

    candidates: List[PartitionCandidate]
    best: Optional[PartitionCandidate]
    objective: str

    def pareto_front(self) -> List[PartitionCandidate]:
        """Feasible candidates not dominated in (static power,
        reconfiguration time)."""
        feasible = [c for c in self.candidates if c.feasible]
        front = []
        for c in feasible:
            dominated = any(
                o.static_power_w <= c.static_power_w
                and o.reconfig_time_per_cycle_s <= c.reconfig_time_per_cycle_s
                and (
                    o.static_power_w < c.static_power_w
                    or o.reconfig_time_per_cycle_s < c.reconfig_time_per_cycle_s
                )
                for o in feasible
            )
            if not dominated:
                front.append(c)
        return front


def auto_partition(
    graph: DataflowGraph,
    static_slices: int,
    counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7),
    port: Optional[ConfigPort] = None,
    period_s: float = CYCLE_PERIOD_S,
    reconfig_budget_fraction: float = 0.5,
    objective: str = "power",
) -> AutoPartitionResult:
    """Search the partition-count design space.

    Parameters
    ----------
    graph:
        The combined processing dataflow graph.
    static_slices:
        Slice demand of the static side.
    counts:
        Partition counts to evaluate.
    port:
        Configuration port model (defaults to ICAP-class).
    period_s, reconfig_budget_fraction:
        Feasibility constraint: all per-cycle reconfigurations must fit
        within ``reconfig_budget_fraction * period_s``.
    objective:
        ``"power"`` (minimise static power, tie-break on reconfig time),
        ``"cost"`` (minimise device price) or ``"speed"`` (minimise
        reconfiguration overhead).

    Raises
    ------
    ValueError
        On an empty count list or unknown objective.
    """
    if not counts:
        raise ValueError("need at least one partition count")
    if objective not in ("power", "cost", "speed"):
        raise ValueError(f"unknown objective {objective!r}")
    port = port or Icap()

    candidates: List[PartitionCandidate] = []
    for count in counts:
        modules = split_into_modules(graph, count)
        biggest = max(m.slices for m in modules)
        signals = max(m.interface_nets for m in modules)
        try:
            plan = smallest_device_for_plan(static_slices, [biggest], [signals])
        except FloorplanError:
            continue
        generator = BitstreamGenerator(plan.device)
        per_load = generator.partial_for_region(plan.slots[0].region, "m").total_bytes
        reconfig_time = count * port.configure_time_s(per_load)
        candidates.append(
            PartitionCandidate(
                module_count=count,
                max_module_slices=biggest,
                device=plan.device.name,
                device_price_usd=plan.device.price_usd,
                static_power_w=static_power_w(plan.device),
                reconfig_time_per_cycle_s=reconfig_time,
                feasible=reconfig_time <= reconfig_budget_fraction * period_s,
            )
        )

    keys: dict = {
        "power": lambda c: (c.static_power_w, c.reconfig_time_per_cycle_s),
        "cost": lambda c: (c.device_price_usd, c.reconfig_time_per_cycle_s),
        "speed": lambda c: (c.reconfig_time_per_cycle_s, c.static_power_w),
    }
    feasible = [c for c in candidates if c.feasible]
    best = min(feasible, key=keys[objective]) if feasible else None
    return AutoPartitionResult(candidates=candidates, best=best, objective=objective)
