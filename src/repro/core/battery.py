"""Battery-life estimation.

The paper's introduction frames the whole problem around "low-power
applications (e.g. battery-driven applications)" where FPGAs normally lose
to microcontrollers.  This module turns the per-cycle energy numbers of the
system variants into the figure a product manager asks for: how long does
the battery last?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.app.system import CycleResult, _BaseSystem


@dataclass(frozen=True)
class BatteryModel:
    """A primary battery pack feeding the system through a regulator."""

    capacity_mah: float = 2600.0  # one industrial LiSOCl2 D cell ~ 19 Ah; AA ~2.6 Ah
    voltage_v: float = 3.6
    #: DC/DC conversion efficiency.
    regulator_efficiency: float = 0.85
    #: Fraction of capacity usable before the voltage sags out of spec.
    usable_fraction: float = 0.9

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0 or self.voltage_v <= 0:
            raise ValueError("capacity and voltage must be positive")
        if not 0 < self.regulator_efficiency <= 1 or not 0 < self.usable_fraction <= 1:
            raise ValueError("efficiency and usable fraction must be in (0, 1]")

    @property
    def usable_energy_j(self) -> float:
        """Energy deliverable to the load, joules."""
        raw = self.capacity_mah * 1e-3 * 3600 * self.voltage_v
        return raw * self.usable_fraction * self.regulator_efficiency

    def lifetime_hours(self, load_power_w: float) -> float:
        """Runtime at a constant load power.

        Raises
        ------
        ValueError
            On non-positive load.
        """
        if load_power_w <= 0:
            raise ValueError(f"load power must be positive, got {load_power_w}")
        return self.usable_energy_j / load_power_w / 3600

    def measurement_cycles(self, energy_per_cycle_j: float) -> int:
        """Total measurement cycles one battery delivers."""
        if energy_per_cycle_j <= 0:
            raise ValueError("cycle energy must be positive")
        return int(self.usable_energy_j / energy_per_cycle_j)


@dataclass(frozen=True)
class LifetimeRow:
    """Battery lifetime of one system variant."""

    label: str
    avg_power_mw: float
    lifetime_days: float
    cycles_total: int


def estimate_lifetimes(
    systems: Dict[str, _BaseSystem],
    battery: Optional[BatteryModel] = None,
    level: float = 0.5,
) -> List[LifetimeRow]:
    """Run one cycle per system and extrapolate battery lifetime.

    Raises
    ------
    ValueError
        On an empty system dict.
    """
    if not systems:
        raise ValueError("need at least one system")
    battery = battery or BatteryModel()
    rows: List[LifetimeRow] = []
    for label, system in systems.items():
        system.reset()
        result = system.run_cycle(level)
        period = max(result.schedule.period_s, result.cycle_busy_s)
        rows.append(
            LifetimeRow(
                label=label,
                avg_power_mw=result.avg_power_w * 1e3,
                lifetime_days=battery.lifetime_hours(result.avg_power_w) / 24,
                cycles_total=battery.measurement_cycles(result.energy_j),
            )
        )
    return rows
