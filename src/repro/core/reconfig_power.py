"""Approach 2 (paper §4.2): reconfiguration for power optimization.

Three quantities the paper argues about, as analysis functions:

* :func:`size_devices` — the device each implementation style needs (flat
  vs one slot vs N smaller slots), hence the static-power and cost deltas.
* :func:`power_vs_clock` — "the increase in performance ... allows a
  reduced clock frequency, which further reduces dynamic power".
* :func:`reconfig_overhead_report` — "it is also very important to
  consider the time overhead induced by the reconfiguration process"
  (JCAP vs ICAP against the 100 ms cycle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fabric.device import SPARTAN3, DeviceSpec, smallest_fitting_device
from repro.power.model import PowerParams, block_dynamic_power_w, static_power_w
from repro.reconfig.ports import ConfigPort, Icap, Jcap
from repro.reconfig.scheduler import CYCLE_PERIOD_S
from repro.reconfig.slots import Floorplan, FloorplanError, smallest_device_for_plan
from repro.sysgen.compile import CompiledModule


@dataclass(frozen=True)
class DeviceSizingResult:
    """Devices required by each implementation style."""

    flat_slices: int
    flat_device: DeviceSpec
    one_slot_device: DeviceSpec
    one_slot_floorplan: Floorplan
    multi_slot_count: int
    multi_slot_device: DeviceSpec
    multi_slot_floorplan: Floorplan

    @property
    def static_power_saving_w(self) -> float:
        """Static power saved by the one-slot reconfigurable system vs the
        flat system — the §4.2 headline mechanism."""
        return static_power_w(self.flat_device) - static_power_w(self.one_slot_device)

    @property
    def cost_saving_usd(self) -> float:
        return self.flat_device.price_usd - self.one_slot_device.price_usd

    def summary(self) -> str:
        return "\n".join(
            [
                "Device sizing (paper Section 4.2 / conclusions):",
                f"  flat (no reconfiguration): {self.flat_slices} slices -> {self.flat_device.name}",
                f"  1 slot  (3 modules)      : -> {self.one_slot_device.name}",
                f"  {self.multi_slot_count} smaller modules       : -> {self.multi_slot_device.name}",
                f"  static power saving: {self.static_power_saving_w * 1e3:.1f} mW, "
                f"cost saving: {self.cost_saving_usd:.2f} USD",
            ]
        )


def size_devices(
    static_slices: int,
    resident_slices: int,
    modules: Sequence[CompiledModule],
    repartitioned: Sequence[CompiledModule],
) -> DeviceSizingResult:
    """Compute the paper's device-downsizing chain.

    Parameters
    ----------
    static_slices:
        Slice demand of the static side (controller, links, config port).
    resident_slices:
        Always-resident extras of the *flat* system only (interfaces the
        reconfigurable system loads on demand).
    modules:
        The functional modules (time-multiplexed in the one-slot system).
    repartitioned:
        The same functionality split into more, smaller modules.

    Raises
    ------
    ValueError
        If any module list is empty.
    """
    if not modules or not repartitioned:
        raise ValueError("need at least one module in each partitioning")
    flat_slices = static_slices + resident_slices + sum(m.slices for m in modules)
    flat_brams = max(2, sum(m.brams for m in modules))
    flat_mults = sum(m.multipliers for m in modules) + 1
    flat_device = smallest_fitting_device(flat_slices, flat_brams, flat_mults, utilization_cap=0.95)

    one_slot = smallest_device_for_plan(
        static_slices,
        [max(m.slices for m in modules)],
        [max(m.interface_nets for m in modules)],
    )
    multi = smallest_device_for_plan(
        static_slices,
        [max(m.slices for m in repartitioned)],
        [max(m.interface_nets for m in repartitioned)],
    )
    return DeviceSizingResult(
        flat_slices=flat_slices,
        flat_device=flat_device,
        one_slot_device=one_slot.device,
        one_slot_floorplan=one_slot,
        multi_slot_count=len(repartitioned),
        multi_slot_device=multi.device,
        multi_slot_floorplan=multi,
    )


@dataclass(frozen=True)
class ClockPowerPoint:
    """One point of the clock/power trade-off curve."""

    clock_mhz: float
    processing_time_s: float
    dynamic_power_w: float
    total_power_w: float
    meets_deadline: bool


def power_vs_clock(
    module_slices: int,
    frame_samples: int,
    latency_cycles: int,
    device: DeviceSpec,
    clocks_mhz: Sequence[float],
    deadline_s: float = CYCLE_PERIOD_S / 10,
    mean_activity: float = 0.15,
    params: Optional[PowerParams] = None,
) -> List[ClockPowerPoint]:
    """Sweep the hardware clock: dynamic power falls linearly with the
    clock while the (fast) hardware still meets the processing deadline —
    the §4.2 "reduced clock frequency" argument made quantitative.

    Raises
    ------
    ValueError
        On an empty clock list.
    """
    if not clocks_mhz:
        raise ValueError("need at least one clock point")
    params = params or PowerParams()
    static = static_power_w(device, params)
    points = []
    for clock in sorted(clocks_mhz):
        if clock <= 0:
            raise ValueError(f"clock must be positive, got {clock}")
        processing = (frame_samples + latency_cycles) / (clock * 1e6)
        dynamic = block_dynamic_power_w(module_slices, mean_activity, clock, params)
        points.append(
            ClockPowerPoint(
                clock_mhz=clock,
                processing_time_s=processing,
                dynamic_power_w=dynamic,
                total_power_w=static + dynamic,
                meets_deadline=processing <= deadline_s,
            )
        )
    return points


@dataclass(frozen=True)
class OverheadRow:
    """Reconfiguration overhead of one module over one port."""

    port: str
    module: str
    bitstream_bytes: int
    time_s: float


@dataclass(frozen=True)
class OverheadReport:
    """JCAP-vs-ICAP overhead against the measurement period."""

    rows: Tuple[OverheadRow, ...]
    period_s: float

    def total_time_s(self, port: str) -> float:
        return sum(r.time_s for r in self.rows if r.port == port)

    def fits(self, port: str) -> bool:
        return self.total_time_s(port) <= self.period_s

    def summary(self) -> str:
        ports = sorted({r.port for r in self.rows})
        lines = [f"Reconfiguration overhead per {self.period_s * 1e3:.0f} ms cycle:"]
        for port in ports:
            total = self.total_time_s(port)
            lines.append(
                f"  {port:<16}: {total * 1e3:8.2f} ms "
                f"({'fits' if self.fits(port) else 'EXCEEDS'} the cycle)"
            )
        return "\n".join(lines)


def reconfig_overhead_report(
    controller_factory,
    module_names: Sequence[str],
    ports: Optional[Sequence[ConfigPort]] = None,
    period_s: float = CYCLE_PERIOD_S,
) -> OverheadReport:
    """Measure per-cycle reconfiguration time over several port models.

    Parameters
    ----------
    controller_factory:
        Callable ``port -> ReconfigController`` with the modules prepared
        (so each port sees identical bitstream sizes).
    module_names:
        Modules loaded per cycle, in schedule order.
    ports:
        Port models to compare; defaults to improved JCAP, basic JCAP and
        ICAP.
    """
    ports = list(ports) if ports is not None else [Jcap(improved=True), Jcap(improved=False), Icap()]
    rows: List[OverheadRow] = []
    for port in ports:
        controller = controller_factory(port)
        label = port.name
        if isinstance(port, Jcap):
            label = f"{port.name}({'improved' if port.improved else 'basic'})"
        for name in module_names:
            record = controller.load(name, 0)
            rows.append(
                OverheadRow(
                    port=label,
                    module=name,
                    bitstream_bytes=record.config.bitstream_bytes,
                    time_s=record.total_time_s,
                )
            )
    return OverheadReport(rows=tuple(rows), period_s=period_s)


@dataclass(frozen=True)
class PartitionStudy:
    """Ablation: module count vs slot size, device and per-cycle overhead."""

    counts: Tuple[int, ...]
    max_module_slices: Tuple[int, ...]
    devices: Tuple[str, ...]
    reconfig_times_s: Tuple[float, ...]


def partition_study(
    graph_splitter,
    static_slices: int,
    counts: Sequence[int],
    port: Optional[ConfigPort] = None,
) -> PartitionStudy:
    """Sweep the repartitioning count (the paper's "e.g. 5 reconfigurable
    modules"): more modules -> smaller slot -> smaller device, but more
    reconfigurations per cycle.

    Parameters
    ----------
    graph_splitter:
        Callable ``count -> List[CompiledModule]``.
    """
    from repro.fabric.bitstream import BitstreamGenerator

    port = port or Jcap()
    max_slices: List[int] = []
    devices: List[str] = []
    times: List[float] = []
    for count in counts:
        modules = graph_splitter(count)
        biggest = max(m.slices for m in modules)
        plan = smallest_device_for_plan(
            static_slices, [biggest], [max(m.interface_nets for m in modules)]
        )
        generator = BitstreamGenerator(plan.device)
        slot_region = plan.slots[0].region
        per_load = generator.partial_for_region(slot_region, "m").total_bytes
        max_slices.append(biggest)
        devices.append(plan.device.name)
        times.append(len(modules) * port.configure_time_s(per_load))
    return PartitionStudy(
        counts=tuple(counts),
        max_module_slices=tuple(max_slices),
        devices=tuple(devices),
        reconfig_times_s=tuple(times),
    )
