"""Approach 3 (paper §4.3): the full power-aware PAR flow.

Drives the complete pipeline end to end, as the paper did for the hardware
data-processing modules:

1. place & route the module,
2. post-PAR simulation producing a VCD (or synthetic activity carried on
   the netlist),
3. extract per-net communication rates,
4. reallocate the hottest nets' logic and re-route in power mode,
5. report the Table-2 rows and the whole-module routing-power saving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.fabric.device import DeviceSpec
from repro.netlist.netlist import Netlist
from repro.par.design import Design
from repro.par.placer import PlacerOptions, place
from repro.par.power_opt import NetOptimizationRecord, PowerOptResult, optimize_nets
from repro.par.router import RouterOptions, route
from repro.par.timing import TimingReport, analyze_timing
from repro.power.estimator import PowerEstimator, PowerReport


@dataclass
class PowerAwareFlowResult:
    """Everything the §4.3 flow produces."""

    design: Design
    timing_before: TimingReport
    timing_after: TimingReport
    power_before: PowerReport
    power_after: PowerReport
    optimization: PowerOptResult

    @property
    def routing_power_reduction_pct(self) -> float:
        return self.optimization.total_reduction_pct

    def table2(self) -> str:
        """The paper's Table 2, from our measured nets."""
        return self.optimization.table()


def run_power_aware_flow(
    netlist: Netlist,
    device: DeviceSpec,
    clock_mhz: float,
    top_n: int = 10,
    placer_options: Optional[PlacerOptions] = None,
    router_options: Optional[RouterOptions] = None,
    order: str = "activity",
    region=None,
) -> PowerAwareFlowResult:
    """Run place, route, estimate, optimize, re-estimate.

    The netlist's nets must carry activities (from
    :func:`repro.activity.annotate.annotate_netlist` or synthesis
    defaults) — they are the communication rates the optimizer ranks by.

    Raises
    ------
    ValueError
        If the netlist does not fit the device or routing never
        legalises.
    """
    placement = place(netlist, device, region=region, options=placer_options)
    routing = route(netlist, placement, device, options=router_options)
    if not routing.legal:
        raise ValueError(
            f"routing of {netlist.name!r} on {device.name} did not legalise"
        )
    design = Design(
        netlist=netlist,
        device=device,
        region=region,
        placement=placement,
        routed_nets=routing.nets,
        graph=routing.graph,
    )
    timing_before = analyze_timing(design)
    power_before = PowerEstimator(design, clock_mhz).report()
    optimization = optimize_nets(design, clock_mhz, top_n=top_n, order=order)
    timing_after = analyze_timing(design)
    power_after = PowerEstimator(design, clock_mhz).report()
    return PowerAwareFlowResult(
        design=design,
        timing_before=timing_before,
        timing_after=timing_after,
        power_before=power_before,
        power_after=power_after,
        optimization=optimization,
    )
