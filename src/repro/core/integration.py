"""Approach 1 (paper §4.1): integration of external digital components.

"One way to simplify the design process, and thereby reduce manufacturing
costs, is to integrate the external digital components in the FPGA
system."  This module quantifies that trade: discrete DA/AD converter
chips versus the on-chip delta-sigma cores (plus the simple external RC
filters that remain), in BOM cost, board power and FPGA resources — and
the further §4.1 refinement of configuring the converters only during the
sampling phase of each cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ip.delta_sigma import (
    ADC_FOOTPRINT,
    DAC_FOOTPRINT,
    DAC_FOOTPRINT_WITH_OPB,
    EXTERNAL_ADC_CHIP,
    EXTERNAL_DAC_CHIP,
)
from repro.ip.sinus import SINUS_FOOTPRINT
from repro.power.model import PowerParams, block_dynamic_power_w

#: BOM cost of the passive RC filter networks that remain external.
RC_FILTER_COST_USD = 0.30
#: Board cost saved per removed discrete package (area, assembly, routing).
BOARD_COST_PER_PACKAGE_USD = 0.45


@dataclass(frozen=True)
class IntegrationReport:
    """Cost/power/resource comparison of external vs integrated converters."""

    external_bom_usd: float
    integrated_bom_usd: float
    external_power_mw: float
    integrated_power_mw: float
    integrated_slices: int
    integrated_slices_with_opb: int
    opb_interface_slices_saved: int
    on_demand_power_mw: float

    @property
    def bom_saving_usd(self) -> float:
        return self.external_bom_usd - self.integrated_bom_usd

    @property
    def power_saving_mw(self) -> float:
        return self.external_power_mw - self.integrated_power_mw

    def summary(self) -> str:
        return "\n".join(
            [
                "Converter integration (paper Section 4.1):",
                f"  external chips : {self.external_bom_usd:6.2f} USD, {self.external_power_mw:6.1f} mW",
                f"  integrated     : {self.integrated_bom_usd:6.2f} USD, {self.integrated_power_mw:6.1f} mW, "
                f"{self.integrated_slices} slices",
                f"  OPB interface removed: -{self.opb_interface_slices_saved} slices",
                f"  on-demand configuration: {self.on_demand_power_mw:6.1f} mW effective",
            ]
        )


def analyze_converter_integration(
    converter_clock_mhz: float = 16.0,
    sampling_duty: float = 0.0013,
    params: Optional[PowerParams] = None,
) -> IntegrationReport:
    """Quantify the §4.1 integration step.

    Parameters
    ----------
    converter_clock_mhz:
        Input-sample clock of the converter cores.
    sampling_duty:
        Fraction of the measurement cycle during which the converters are
        needed ("restricted to the initial phase of each measurement
        cycle") — with a 128 us sampling phase in a 100 ms cycle this is
        ~0.13 %.

    Raises
    ------
    ValueError
        If the duty cycle is outside (0, 1].
    """
    if not 0.0 < sampling_duty <= 1.0:
        raise ValueError(f"sampling duty must be in (0, 1], got {sampling_duty}")
    params = params or PowerParams()

    external_bom = EXTERNAL_DAC_CHIP.price_usd + EXTERNAL_ADC_CHIP.price_usd
    external_power = EXTERNAL_DAC_CHIP.power_mw + EXTERNAL_ADC_CHIP.power_mw

    slices = SINUS_FOOTPRINT.slices + DAC_FOOTPRINT.slices + ADC_FOOTPRINT.slices
    slices_with_opb = SINUS_FOOTPRINT.slices + DAC_FOOTPRINT_WITH_OPB.slices + ADC_FOOTPRINT.slices
    mean_activity = 0.45
    integrated_power = block_dynamic_power_w(slices, mean_activity, converter_clock_mhz, params) * 1e3

    return IntegrationReport(
        external_bom_usd=external_bom + 2 * BOARD_COST_PER_PACKAGE_USD,
        integrated_bom_usd=RC_FILTER_COST_USD,
        external_power_mw=external_power,
        integrated_power_mw=integrated_power,
        integrated_slices=slices,
        integrated_slices_with_opb=slices_with_opb,
        opb_interface_slices_saved=DAC_FOOTPRINT_WITH_OPB.slices - DAC_FOOTPRINT.slices,
        on_demand_power_mw=integrated_power * sampling_duty,
    )
