"""The paper's contribution: three methodologies for cost- and
power-optimized FPGA system integration.

* :mod:`repro.core.integration` — §4.1, integration of external digital
  components (delta-sigma converters) into the FPGA.
* :mod:`repro.core.reconfig_power` — §4.2, dynamic and partial
  reconfiguration for reduced static and dynamic power (device sizing,
  clock reduction, reconfiguration overhead).
* :mod:`repro.core.par_power` — §4.3, power-optimized place-and-route by
  activity-driven net reallocation.
* :mod:`repro.core.tradeoff` — whole-system cost/power comparison across
  the implementation variants.
"""

from repro.core.integration import IntegrationReport, analyze_converter_integration
from repro.core.reconfig_power import (
    DeviceSizingResult,
    size_devices,
    power_vs_clock,
    reconfig_overhead_report,
    PartitionStudy,
    partition_study,
)
from repro.core.par_power import PowerAwareFlowResult, run_power_aware_flow
from repro.core.tradeoff import SystemVariant, compare_variants, TradeoffRow
from repro.core.autopartition import auto_partition, AutoPartitionResult, PartitionCandidate
from repro.core.battery import BatteryModel, LifetimeRow, estimate_lifetimes

__all__ = [
    "BatteryModel",
    "LifetimeRow",
    "estimate_lifetimes",
    "auto_partition",
    "AutoPartitionResult",
    "PartitionCandidate",
    "IntegrationReport",
    "analyze_converter_integration",
    "DeviceSizingResult",
    "size_devices",
    "power_vs_clock",
    "reconfig_overhead_report",
    "PartitionStudy",
    "partition_study",
    "PowerAwareFlowResult",
    "run_power_aware_flow",
    "SystemVariant",
    "compare_variants",
    "TradeoffRow",
]
