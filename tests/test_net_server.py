"""TCP front-door tests: the misbehaving-client battery, quotas, drain,
the snapshot verb, and the golden network trace.

The battery's common postcondition is the no-leak invariant: whatever a
client does — never reading, dribbling bytes, vanishing mid-request —
the server must clean it up in bounded time and the broker's in-flight
depth must return to zero (``server.pending() == 0`` and
``service.broker.depth == 0``), because a leaked entry is capacity some
future client never gets back.
"""

import json
import socket
import time
from pathlib import Path

import pytest

from repro.net import NetClient, NetClientError, NetConfig, NetServer, encode_message
from repro.net.quotas import ClientQuota, QuotaExceeded
from repro.serve import FleetService, MeasurementRequest, synthetic_load
from repro.shard.wire import KIND_HELLO, KIND_SUBMIT, request_to_wire
from repro.trace import TraceSink, Tracer

NET_GOLDEN_PATH = Path(__file__).parent / "golden" / "trace_structure_net.json"

#: Cache-temperature-dependent spans, excluded like test_trace.py does.
_UNSTABLE_SPANS = {"artifact_build"}


def _eventually(predicate, timeout_s=15.0, interval_s=0.02, what="condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval_s)
    raise AssertionError(f"{what} not reached within {timeout_s}s")


@pytest.fixture()
def stack(request):
    """A started FleetService + NetServer pair, torn down afterwards.

    Parametrize indirectly with a NetConfig-kwargs dict (and optionally
    ``service={...}`` FleetService overrides) via ``request.param``.
    """
    params = dict(getattr(request, "param", {}) or {})
    service_kwargs = params.pop("service", {})
    service_kwargs.setdefault("workers", 1)
    service_kwargs.setdefault("max_batch", 4)
    service_kwargs.setdefault("queue_capacity", 128)
    service = FleetService(**service_kwargs)
    service.start()
    server = NetServer(service, NetConfig(**params)).start()
    yield service, server
    server.stop(drain=False)
    service.shutdown(drain=False)


def _submit_line(request):
    return encode_message(KIND_SUBMIT, {"request": request_to_wire(request)})


# ------------------------------------------------- misbehaving clients


@pytest.mark.parametrize(
    "stack",
    [{"write_timeout_s": 0.5, "write_buffer_bytes": 512, "outbound_queue": 512}],
    indirect=True,
)
def test_slow_reader_is_disconnected_without_leaks(stack):
    """A client that submits a pile of work and never reads its socket
    stalls the write path; the server must cut it loose within the write
    timeout and the broker must still drain to zero."""
    service, server = stack
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    # A tiny receive window makes the server's sends back up quickly.
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 1024)
    sock.connect(("127.0.0.1", server.port))
    n = 80
    payload = b"".join(_submit_line(r) for r in synthetic_load(n, n_tanks=4))
    sock.sendall(payload)
    _eventually(
        lambda: server.metrics.counter("net_slow_disconnects") >= 1,
        what="slow-client disconnect",
    )
    _eventually(
        lambda: server.pending() == 0 and service.broker.depth == 0,
        what="broker drained after slow-client disconnect",
    )
    assert server.connection_count() == 0
    # Every admitted request reached a terminal outcome somewhere.
    sent = server.metrics.counter("net_responses_sent")
    orphaned = server.metrics.counter("net_responses_orphaned")
    assert sent + orphaned == server.metrics.counter("net_submits")
    assert orphaned >= 1
    sock.close()


@pytest.mark.parametrize("stack", [{"message_timeout_s": 0.3}], indirect=True)
def test_trickle_writer_is_disconnected_in_bounded_time(stack):
    """One byte per 100 ms never completes a line inside
    ``message_timeout_s``; the connection must die within the window,
    not sit half-framed forever, and the broker never sees the request."""
    service, server = stack
    line = _submit_line(MeasurementRequest(request_id=1, tank_id="t", level=0.5))
    sock = socket.create_connection(("127.0.0.1", server.port))
    start = time.monotonic()
    disconnected_after = None
    try:
        for i, byte in enumerate(line[:-1]):
            try:
                sock.sendall(bytes([byte]))
            except OSError:
                disconnected_after = time.monotonic() - start
                break
            time.sleep(0.1)
            if time.monotonic() - start > 5.0:
                break
    finally:
        sock.close()
    _eventually(lambda: server.connection_count() == 0, what="trickle client gone")
    _eventually(
        lambda: server.metrics.counter("net_protocol_errors") >= 1,
        what="stalled-line protocol error recorded",
    )
    if disconnected_after is not None:
        assert disconnected_after < 5.0
    assert service.broker.depth == 0
    assert server.metrics.counter("net_submits") == 0


def test_mid_request_disconnect_orphans_cleanly(stack):
    """A client that submits and immediately vanishes leaks nothing: its
    requests finish inside the service and their responses are counted
    orphaned (or sent, if they raced the close) — pending and broker
    depth both return to zero."""
    service, server = stack
    n = 6
    sock = socket.create_connection(("127.0.0.1", server.port))
    sock.sendall(b"".join(_submit_line(r) for r in synthetic_load(n, n_tanks=2)))
    # Wait until the submits are admitted (an immediate close would RST
    # the unread bytes away and the requests would never exist), then
    # vanish without reading a single response.
    _eventually(
        lambda: server.metrics.counter("net_submits") == n, what="submits admitted"
    )
    sock.close()
    _eventually(
        lambda: server.pending() == 0 and service.broker.depth == 0,
        what="broker drained after mid-request disconnect",
    )
    _eventually(
        lambda: server.metrics.counter("net_responses_sent")
        + server.metrics.counter("net_responses_orphaned")
        == server.metrics.counter("net_submits"),
        what="every submit accounted sent-or-orphaned",
    )
    assert server.metrics.counter("net_submits") == n


def test_garbage_line_closes_connection_with_fatal_error(stack):
    """Stream-level damage (unparseable line) gets one structured fatal
    error reply and a close; the service is untouched."""
    service, server = stack
    client = NetClient("127.0.0.1", server.port).connect()
    client.send_raw(b"this is not json\n")
    _eventually(
        lambda: client.pump(0.05) >= 0 and client.closed,
        what="fatal error reply + server close",
    )
    assert any(e.get("fatal") for e in client.errors)
    assert service.broker.depth == 0


def test_invalid_request_keeps_the_connection(stack):
    """A well-formed envelope carrying an invalid request (level out of
    range) earns a non-fatal error reply; the same connection then
    serves a valid request normally."""
    service, server = stack
    client = NetClient("127.0.0.1", server.port).connect()
    bad = request_to_wire(MeasurementRequest(request_id=7, tank_id="t", level=0.5))
    bad["level"] = 7.5
    client.send_raw(encode_message(KIND_SUBMIT, {"request": bad}))
    _eventually(lambda: client.pump(0.05) or client.errors, what="error reply")
    assert client.errors and not client.errors[0].get("fatal")
    assert client.errors[0]["request_id"] == 7
    client.submit(MeasurementRequest(request_id=8, tank_id="t", level=0.5))
    responses = client.await_responses(1, timeout_s=30.0)
    assert responses[0].request_id == 8 and responses[0].ok
    client.close()


def test_unexpected_kind_is_answered_not_fatal(stack):
    _, server = stack
    client = NetClient("127.0.0.1", server.port).connect()
    client.send_raw(encode_message(KIND_HELLO, {"who": "me"}))
    _eventually(lambda: client.pump(0.05) or client.errors, what="error reply")
    assert client.errors and not client.errors[0].get("fatal")
    assert client.ping(seq=3)["seq"] == 3  # connection still alive
    client.close()


# --------------------------------------------------------------- quotas


@pytest.mark.parametrize("stack", [{"quota_rps": 1.0, "quota_burst": 2}], indirect=True)
def test_rate_quota_rejects_with_retry_hint(stack):
    service, server = stack
    client = NetClient("127.0.0.1", server.port).connect()
    for request in synthetic_load(4, n_tanks=1):
        client.submit(request)
    client.await_settled(4, timeout_s=30.0)
    assert len(client.rejections) >= 2  # burst of 2, then the bucket is dry
    for payload in client.rejections.values():
        assert payload["retry_after_s"] > 0.0
        assert "rate" in payload["error"]
    assert server.metrics.counter("net_quota_rejections") == len(client.rejections)
    _eventually(lambda: service.broker.depth == 0, what="broker drained")
    client.close()


def test_client_quota_unit_behaviour():
    """ClientQuota unit contract: in-flight cap, bucket refill, and the
    retry hint taking the max of bucket wait and admission delay."""
    clock = [0.0]
    quota = ClientQuota(rate_per_s=2.0, burst=2, max_inflight=2, clock=lambda: clock[0])
    quota.try_acquire()
    quota.try_acquire()
    with pytest.raises(QuotaExceeded) as exc_info:
        quota.try_acquire(admission_delay_s=0.7)
    assert exc_info.value.retry_after_s == pytest.approx(0.7)
    assert quota.inflight_refusals == 1
    quota.release()
    with pytest.raises(QuotaExceeded) as rate_info:  # bucket empty at t=0
        quota.try_acquire()
    assert rate_info.value.retry_after_s == pytest.approx(0.5)
    clock[0] = 1.0  # 2 tokens refill
    quota.try_acquire()
    assert quota.rate_refusals == 1
    with pytest.raises(ValueError):
        ClientQuota(rate_per_s=-1.0)


# ------------------------------------------------ limits, drain, snapshot


@pytest.mark.parametrize("stack", [{"max_connections": 1}], indirect=True)
def test_connection_limit_refuses_with_reason(stack):
    _, server = stack
    first = NetClient("127.0.0.1", server.port).connect()
    with pytest.raises(NetClientError, match="connection limit"):
        NetClient("127.0.0.1", server.port, timeout_s=5.0).connect()
    assert server.metrics.counter("net_connections_refused") == 1
    first.close()
    _eventually(lambda: server.connection_count() == 0, what="slot freed")
    NetClient("127.0.0.1", server.port).connect().close()


def test_graceful_drain_flushes_then_refuses(stack):
    """SIGTERM semantics: drain() waits out in-flight work; afterwards
    new submits are rejected as draining and new connections refused,
    while the already-connected client got every response."""
    service, server = stack
    client = NetClient("127.0.0.1", server.port).connect()
    for request in synthetic_load(8, n_tanks=2):
        client.submit(request)
    # Submits still in the socket when SIGTERM lands are *rejected* as
    # draining, by design — admit all 8 first so this test pins the
    # flush-the-admitted half of the contract.
    _eventually(
        lambda: server.metrics.counter("net_submits") == 8, what="submits admitted"
    )
    assert server.drain(timeout_s=60.0) is True
    assert server.pending() == 0
    responses = client.await_responses(8, timeout_s=30.0)
    assert all(r.ok for r in responses)
    client.submit(MeasurementRequest(request_id=99, tank_id="t", level=0.5))
    _eventually(lambda: client.pump(0.05) or client.rejections, what="drain reject")
    assert "draining" in client.rejections[99]["error"]
    with pytest.raises(NetClientError):
        NetClient("127.0.0.1", server.port, timeout_s=5.0).connect()
    client.close()
    assert service.broker.depth == 0


def test_snapshot_verb_merges_service_and_net_registries(stack):
    service, server = stack
    client = NetClient("127.0.0.1", server.port).connect()
    for request in synthetic_load(5, n_tanks=2):
        client.submit(request)
    client.await_responses(5, timeout_s=30.0)
    snap = client.snapshot(timeout_s=10.0)
    # Both registries present in one merged view...
    assert snap["counters"]["net_submits"] == 5
    assert snap["counters"]["requests_served"] == 5
    # ...with reservoir-backed (not degraded) percentiles.
    assert "merge_degraded" not in snap
    assert snap["histograms"]["latency_s"]["count"] == 5
    assert snap["histograms"]["latency_s"]["p95"] is not None
    assert snap["net"]["connections"] == 1
    assert snap["broker"]["depth"] == 0
    assert json.dumps(snap)  # the verb's answer must be JSON-clean
    client.close()


def test_server_restart_is_refused_and_stop_is_idempotent():
    service = FleetService(workers=1, max_batch=2, queue_capacity=16)
    service.start()
    server = NetServer(service, NetConfig()).start()
    server.stop()
    server.stop()  # idempotent
    with pytest.raises(RuntimeError, match="restarted"):
        server.start()
    assert service.on_deliver is None  # delivery hook unhooked
    service.shutdown(drain=False)


# ------------------------------------------------------- golden net trace


def _stable_structure(trace):
    return [list(pair) for pair in trace.structure() if pair[1] not in _UNSTABLE_SPANS]


def _run_traced_tcp_requests():
    """Serve 4 requests over 2 tanks through the socket with tracing on;
    returns traces keyed by server-side request id (deterministic: one
    sequential client, ids assigned in arrival order from 1)."""
    sink = TraceSink(capacity=64, exemplars=4)
    tracer = Tracer(sink=sink)
    service = FleetService(
        workers=1, max_batch=4, queue_capacity=32, seed=11, tracer=tracer
    )
    service.start()
    server = NetServer(service, NetConfig()).start()
    try:
        client = NetClient("127.0.0.1", server.port).connect()
        for request in synthetic_load(4, n_tanks=2):
            client.submit(request)
        client.await_responses(4, timeout_s=60.0)
        client.close()
    finally:
        server.stop()
        service.shutdown()
    tracer.close()
    by_id = {t.request_id: t for t in sink.traces() if t.request_id is not None}
    assert len(by_id) == 4
    return by_id


def test_tcp_trace_structure_matches_golden():
    """The network request path's span skeleton —
    accept → decode → admit → queue → … → respond — is frozen under
    ``tests/golden/``; a span added, dropped or reordered anywhere from
    socket accept to response flush must be a conscious golden refresh."""
    by_id = _run_traced_tcp_requests()
    golden = json.loads(NET_GOLDEN_PATH.read_text())
    assert {str(i) for i in by_id} == set(golden["net"])
    for request_id, trace in by_id.items():
        assert _stable_structure(trace) == golden["net"][str(request_id)], (
            f"network span structure drifted for request {request_id}"
        )
        names = [name for _, name in trace.structure()]
        assert names[0] == "accept" and names[1] == "decode"
        assert names[-1] == "respond"
