"""Property-based tests (hypothesis) on core data structures and
invariants."""

import io
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.activity.estimate import toggle_rates
from repro.activity.vcd import VcdWriter, parse_vcd
from repro.app.dsp import goertzel, quantize
from repro.app.tank import TankModel
from repro.fabric.bitstream import Bitstream, BitstreamGenerator
from repro.fabric.device import SPARTAN3, get_device
from repro.fabric.grid import Grid, Region
from repro.fabric.routing import RoutingGraph
from repro.netlist.cells import SiteKind
from repro.netlist.generate import random_netlist
from repro.par.placer import PlacerOptions, place
from repro.par.router import RouterOptions, route
from repro.power.model import switching_power_w
from repro.softcore.isa import bits_to_float, float_to_bits
from repro.sysgen.compile import _balanced_partition


class TestFloatBits:
    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_roundtrip(self, value):
        assert bits_to_float(float_to_bits(value)) == value or (
            value == 0.0 and bits_to_float(float_to_bits(value)) == 0.0
        )

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_bits_roundtrip(self, bits):
        value = bits_to_float(bits)
        if not math.isnan(value):
            assert float_to_bits(value) == bits


class TestQuantize:
    @given(
        st.floats(min_value=-100.0, max_value=100.0),
        st.integers(min_value=0, max_value=20),
    )
    def test_error_bounded_by_half_lsb(self, value, frac_bits):
        q = quantize(value, frac_bits)
        assert abs(q - value) <= 0.5 / (1 << frac_bits) + 1e-12

    @given(st.floats(min_value=-100.0, max_value=100.0))
    def test_idempotent(self, value):
        q = quantize(value, 12)
        assert quantize(q, 12) == q


class TestTankInvariants:
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_level_capacitance_bijection(self, level):
        tank = TankModel()
        assert tank.level_from_capacitance(tank.capacitance_pf(level)) == pytest.approx(
            level, abs=1e-9
        )

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_monotone(self, a, b):
        tank = TankModel()
        if a + 1e-9 < b:  # strictly separated beyond float rounding
            assert tank.capacitance_pf(a) < tank.capacitance_pf(b)


class TestGoertzelProperties:
    @given(
        st.floats(min_value=0.01, max_value=0.9),
        st.floats(min_value=-math.pi, max_value=math.pi),
    )
    @settings(max_examples=30, deadline=None)
    def test_recovers_amplitude_and_phase(self, amplitude, phase):
        fs, f, n = 4e6, 500e3, 256
        t = np.arange(n) / fs
        x = amplitude * np.cos(2 * np.pi * f * t + phase)
        phasor = goertzel(x, f, fs)
        assert abs(phasor) == pytest.approx(amplitude, rel=1e-6)
        assert math.remainder(np.angle(phasor) - phase, 2 * math.pi) == pytest.approx(
            0.0, abs=1e-6
        )

    @given(st.floats(min_value=0.1, max_value=2.0))
    @settings(max_examples=20, deadline=None)
    def test_linear(self, scale):
        fs, f, n = 4e6, 500e3, 128
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, n)
        a = goertzel(x, f, fs)
        b = goertzel(scale * x, f, fs)
        assert b == pytest.approx(scale * a, rel=1e-9)


class TestVcdProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 1000), st.integers(0, 255)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, raw_changes):
        changes = sorted(raw_changes, key=lambda tv: tv[0])
        out = io.StringIO()
        writer = VcdWriter(out)
        writer.declare("bus", 8)
        for t, v in changes:
            writer.change(t, "bus", v)
        data = parse_vcd(out.getvalue())
        got = data["bus"][1]
        assert [v for _t, v in got] == [v for _t, v in changes]

    # The first VCD record is the initial value, not a transition, so the
    # measured rate is (2N-1)/N — within 5% of 2.0 only for N >= 10.
    @given(st.integers(min_value=10, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_toggle_rate_of_clock_is_two(self, cycles):
        out = io.StringIO()
        writer = VcdWriter(out)
        writer.declare("clk", 1)
        period = 1000
        for i in range(2 * cycles):
            writer.change(i * period // 2, "clk", i % 2)
        data = parse_vcd(out.getvalue())
        report = toggle_rates(data, clock_period_ps=period, duration_ps=cycles * period)
        expected = (2 * cycles - 1) / cycles  # first record is the init value
        assert report.get("clk") == pytest.approx(expected, rel=1e-9)


class TestBitstreamProperties:
    @given(st.sampled_from([d.name for d in SPARTAN3]), st.data())
    @settings(max_examples=25, deadline=None)
    def test_partial_roundtrip_any_region(self, device_name, data):
        dev = get_device(device_name)
        x0 = data.draw(st.integers(0, dev.clb_columns - 1))
        x1 = data.draw(st.integers(x0, min(dev.clb_columns - 1, x0 + 6)))
        region = Grid(dev).column_region(x0, x1)
        bs = BitstreamGenerator(dev).partial_for_region(region, "m")
        back = Bitstream.from_bytes(bs.to_bytes(), dev.name)
        assert back.frames == bs.frames


class TestPowerModelProperties:
    @given(
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=2.0),
        st.floats(min_value=0.0, max_value=200.0),
    )
    def test_non_negative(self, cap, activity, clock):
        assert switching_power_w(cap, activity, clock) >= 0.0

    @given(
        st.floats(min_value=0.01, max_value=100.0),
        st.floats(min_value=0.01, max_value=2.0),
        st.floats(min_value=0.01, max_value=200.0),
        st.floats(min_value=1.1, max_value=4.0),
    )
    def test_monotone_in_capacitance(self, cap, activity, clock, factor):
        assert switching_power_w(cap * factor, activity, clock) > switching_power_w(
            cap, activity, clock
        )


class TestPartitionProperties:
    @given(
        st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=30),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_balanced_partition_invariants(self, weights, data):
        count = data.draw(st.integers(1, len(weights)))
        groups = _balanced_partition(weights, count)
        # Exactly `count` non-empty contiguous groups covering all indices.
        assert len(groups) == count
        flat = [i for g in groups for i in g]
        assert flat == list(range(len(weights)))
        assert all(g for g in groups)
        # Optimality sanity: max group sum never below ideal share or the
        # heaviest single item.
        max_sum = max(sum(weights[i] for i in g) for g in groups)
        assert max_sum >= max(weights)
        assert max_sum >= sum(weights) / count - 1e-9


class TestPlaceRouteProperties:
    @given(st.integers(min_value=10, max_value=60), st.integers(min_value=0, max_value=5))
    @settings(max_examples=8, deadline=None)
    def test_placement_legality(self, n_cells, seed):
        dev = get_device("XC3S200")
        nl = random_netlist("p", n_cells, seed=seed)
        placement = place(nl, dev, options=PlacerOptions(steps=4, seed=seed))
        slice_sites = [
            placement.coord(c.name) for c in nl.cells if c.ctype.site == SiteKind.SLICE
        ]
        assert len(set(slice_sites)) == len(slice_sites)
        grid = Grid(dev)
        assert all(grid.is_valid(s) for s in slice_sites)

    @given(st.integers(min_value=0, max_value=4))
    @settings(max_examples=5, deadline=None)
    def test_routing_complete_and_legal(self, seed):
        dev = get_device("XC3S200")
        nl = random_netlist("r", 40, seed=seed)
        placement = place(nl, dev, options=PlacerOptions(steps=4, seed=seed))
        result = route(nl, placement, dev)
        assert result.legal
        assert all(rn.is_complete() for rn in result.nets.values())
