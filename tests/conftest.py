"""Per-test wall-clock ceiling, with or without pytest-timeout.

CI installs ``pytest-timeout`` (see the ``test`` extra) and honours the
``timeout`` ini option in ``pyproject.toml``.  Hermetic environments
without the plugin get a SIGALRM-based fallback here instead, so a
regression that blocks forever (the broker's old backoff busy-spin, a
worker that never heartbeats) fails loudly rather than hanging the run.

The fallback only activates when the plugin is absent — it registers the
same ``timeout`` ini option, so defining it unconditionally would clash
with the real plugin's registration.
"""

from __future__ import annotations

import signal

import pytest

try:  # pragma: no cover - presence depends on the environment
    import pytest_timeout  # noqa: F401

    _HAVE_PLUGIN = True
except ImportError:
    _HAVE_PLUGIN = False

_HAVE_SIGALRM = hasattr(signal, "SIGALRM")


if not _HAVE_PLUGIN:

    def pytest_addoption(parser):
        parser.addini(
            "timeout",
            "per-test wall-clock ceiling in seconds (fallback shim)",
            default="0",
        )


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    if _HAVE_PLUGIN or not _HAVE_SIGALRM:
        yield
        return
    try:
        limit = float(item.config.getini("timeout") or 0)
    except (TypeError, ValueError):
        limit = 0.0
    marker = item.get_closest_marker("timeout")
    if marker and marker.args:
        limit = float(marker.args[0])
    if limit <= 0:
        yield
        return

    def _alarm(signum, frame):
        raise TimeoutError(f"test exceeded the {limit:.0f} s timeout ceiling")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, limit)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "timeout(seconds): per-test wall-clock ceiling"
    )
