"""Tests for DCM, FIFO, UART, FSL, OPB, Ethernet and Profibus cores."""

import pytest

from repro.ip.dcm import CLKDV_DIVIDERS, ClockPlan, Dcm, DcmError
from repro.ip.ethernet import EthernetMac
from repro.ip.fifo import Fifo, fifo_footprint
from repro.ip.fsl import FslLink
from repro.ip.opb import OpbBus, OpbPeripheral, _RegisterFile
from repro.ip.profibus import ProfibusSlave
from repro.ip.uart import Uart


class TestDcm:
    def test_paper_clock_plan(self):
        """The system's clocks all derive from the 50 MHz oscillator:
        16 MHz sinus clock, 64 MHz modulator clock, 25 MHz MicroBlaze."""
        dcm = Dcm(50.0)
        for target in (16.0, 64.0, 25.0, 75.0):
            plan = dcm.synthesize(target)
            assert plan.output_mhz == pytest.approx(target)

    def test_clkdv_preferred_for_simple_division(self):
        plan = Dcm(50.0).synthesize(25.0)
        assert plan.source == "clkdv"

    def test_unreachable_frequency(self):
        with pytest.raises(DcmError):
            Dcm(50.0).synthesize(417.123)

    def test_bad_input(self):
        with pytest.raises(ValueError):
            Dcm(0.0)
        with pytest.raises(DcmError):
            Dcm(50.0).synthesize(-1.0)

    def test_multi_clock_plan(self):
        plans = Dcm(50.0).clock_plan([16.0, 64.0])
        assert len(plans) == 2


class TestFifo:
    def test_order_preserved(self):
        f = Fifo(4)
        for v in (1, 2, 3):
            assert f.push(v)
        assert [f.pop(), f.pop(), f.pop()] == [1, 2, 3]

    def test_overflow_underflow_counted(self):
        f = Fifo(1)
        f.push(1)
        assert not f.push(2)
        assert f.overflows == 1
        f.pop()
        assert f.pop() is None
        assert f.underflows == 1

    def test_width_masking(self):
        f = Fifo(2, width=4)
        f.push(0x1F)
        assert f.pop() == 0xF

    def test_flags(self):
        f = Fifo(2)
        assert f.empty and not f.full
        f.push(1)
        f.push(2)
        assert f.full and not f.empty

    def test_footprint_shallow_vs_deep(self):
        shallow = fifo_footprint(16, 8)
        deep = fifo_footprint(1024, 8)
        assert shallow.brams == 0
        assert deep.brams >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Fifo(0)


class TestUart:
    def test_char_time(self):
        u = Uart(baud_rate=115_200)
        assert u.char_time_s == pytest.approx(10 / 115_200)

    def test_send_line_timing(self):
        u = Uart(baud_rate=9600)
        end = u.send_line("LEVEL 42%")
        assert end == pytest.approx((9 + 2) * 10 / 9600)
        assert bytes(u.transmitted).endswith(b"\r\n")

    def test_back_to_back_sends_queue(self):
        u = Uart()
        t1 = u.send(b"a")
        t2 = u.send(b"b")
        assert t2 == pytest.approx(2 * u.char_time_s)
        assert t2 > t1


class TestFsl:
    def test_transfer(self):
        link = FslLink("mb_to_hw")
        assert link.write(0xDEAD)
        assert link.read() == 0xDEAD
        assert link.read() is None
        assert link.words_transferred == 1

    def test_backpressure(self):
        link = FslLink("x", depth=2)
        assert link.write(1) and link.write(2)
        assert not link.write(3)

    def test_transfer_cycles(self):
        link = FslLink("x")
        assert link.transfer_cycles(0) == 0
        assert link.transfer_cycles(100) == 102
        with pytest.raises(ValueError):
            link.transfer_cycles(-1)


class TestOpb:
    def test_read_write(self):
        bus = OpbBus()
        bus.attach(_RegisterFile(), 0x8000_0000 >> 4, 64, "regs")
        bus.write((0x8000_0000 >> 4) + 8, 77)
        assert bus.read((0x8000_0000 >> 4) + 8) == 77
        assert bus.transfers == 2

    def test_overlap_rejected(self):
        bus = OpbBus()
        bus.attach(_RegisterFile(), 0, 64, "a")
        with pytest.raises(ValueError, match="overlaps"):
            bus.attach(_RegisterFile(), 32, 64, "b")

    def test_unmapped_address(self):
        bus = OpbBus()
        with pytest.raises(ValueError, match="bus error"):
            bus.read(0x1234)

    def test_cycle_accounting(self):
        bus = OpbBus()
        bus.attach(_RegisterFile(), 0, 64, "a")
        bus.read(0)
        bus.read(4)
        assert bus.total_cycles() == 6


class TestInterfaces:
    def test_ethernet_frame_timing(self):
        mac = EthernetMac(mbps=100)
        t = mac.send_frame(b"level=0.42")
        # Padded to 46-byte payload + 38 overhead bytes at 100 Mbps.
        assert t == pytest.approx((8 + 14 + 46 + 4 + 12) * 8 / 100e6)

    def test_ethernet_oversize_rejected(self):
        with pytest.raises(ValueError):
            EthernetMac().send_frame(b"x" * 1501)

    def test_profibus_exchange(self):
        slave = ProfibusSlave()
        t = slave.exchange(b"\x2a\x00")
        assert t == pytest.approx((2 + 9) * 11 / 1_500_000)

    def test_profibus_limits(self):
        with pytest.raises(ValueError):
            ProfibusSlave(address=127)
        with pytest.raises(ValueError):
            ProfibusSlave().exchange(b"x" * 245)
