"""Tests of the fleet-serving runtime (repro.serve)."""

import threading

import pytest

from repro.app.dsp import LevelFilter, process_measurement
from repro.app.modules import standard_modules
from repro.serve import (
    ArtifactCache,
    BrokerFullError,
    FleetService,
    MeasurementRequest,
    RequestBroker,
    RetryPolicy,
    synthetic_load,
)
from repro.serve.batching import STANDARD_PIPELINE, TankStateStore
from repro.serve.metrics import Histogram, Metrics


def run_service(requests, **kwargs):
    """Start a service, serve a request list to completion, shut down."""
    kwargs.setdefault("queue_capacity", len(requests) + 8)
    service = FleetService(**kwargs).start()
    accepted, rejected = service.submit_many(requests)
    assert not rejected
    assert service.await_responses(accepted, timeout_s=120)
    assert service.shutdown()
    return service


def by_id(service):
    return {r.request_id: r for r in service.responses()}


# --------------------------------------------------------------- correctness


def test_batched_responses_match_reference_pipeline():
    """Stage-major batching must not change any request's answer: each
    response equals the per-request reference pipeline result."""
    requests = synthetic_load(8, n_tanks=2)
    service = run_service(requests, workers=1, max_batch=4, batched=True, seed=5)
    responses = by_id(service)
    assert all(r.ok for r in responses.values())
    assert service.metrics.counter("reconfigurations_avoided") > 0

    # Reference: same per-tank sessions (same seeds), same module
    # behaviours, executed strictly per request.
    circuit = service.config.circuit
    tanks = TankStateStore(circuit=circuit, seed=5)
    reference_filters = {}
    for request in synthetic_load(8, n_tanks=2):
        session = tanks.session(request.tank_id)
        modules = standard_modules(circuit, session.frontend.tone_hz)
        cycle = session.frontend.sample_cycle(request.level, 512)
        phasors = modules["amp_phase"].behavior(
            cycle.meas, cycle.ref, cycle.sample_rate_hz, cycle.tone_hz
        )
        c_pf = modules["capacity"].behavior(*phasors)
        level, session.filter_state = modules["filter"].behavior(
            c_pf, session.filter_state
        )
        response = responses[request.request_id]
        assert response.capacitance_pf == pytest.approx(c_pf, abs=1e-9)
        assert response.level_measured == pytest.approx(level, abs=1e-9)

        # And both agree with the unquantised numpy reference pipeline
        # within the modules' fixed-point precision.
        reference = process_measurement(
            cycle.meas,
            cycle.ref,
            cycle.sample_rate_hz,
            cycle.tone_hz,
            circuit,
            reference_filters.setdefault(request.tank_id, LevelFilter()),
        )
        assert response.level_measured == pytest.approx(reference.level, abs=0.02)


def test_batched_equals_per_request_serving():
    """Batched and naive serving produce identical measurements."""
    batched = run_service(
        synthetic_load(6, n_tanks=3), workers=1, max_batch=6, batched=True, seed=2
    )
    naive = run_service(
        synthetic_load(6, n_tanks=3), workers=1, max_batch=6, batched=False, seed=2
    )
    b, n = by_id(batched), by_id(naive)
    assert set(b) == set(n)
    for request_id in b:
        assert b[request_id].level_measured == n[request_id].level_measured
        assert b[request_id].capacitance_pf == n[request_id].capacitance_pf
    # Same answers, far fewer reconfigurations.
    assert (
        batched.metrics.counter("reconfigurations")
        < naive.metrics.counter("reconfigurations")
    )


# --------------------------------------------------------------------- cache


def test_artifact_cache_lru_and_counters():
    cache = ArtifactCache(capacity=2)
    assert cache.get_or_build("a", lambda: 1) == 1
    assert cache.get_or_build("a", lambda: 2) == 1  # hit keeps first value
    cache.put("b", 2)
    cache.put("c", 3)  # evicts "a" (capacity 2)
    assert cache.get("a") is None
    snap = cache.snapshot()
    assert snap["hits"] == 1
    assert snap["evictions"] == 1
    assert 0.0 < snap["hit_rate"] < 1.0


def test_bitstream_cache_shared_across_workers():
    """Worker 2+ must reuse worker 1's partial bitstreams: hit rate > 0
    without serving a single request."""
    service = FleetService(workers=3, batched=True)
    snap = service.metrics_snapshot()
    assert snap["cache"]["misses"] == len(STANDARD_PIPELINE)
    assert snap["cache"]["hits"] == 2 * len(STANDARD_PIPELINE)
    assert snap["cache"]["hit_rate"] > 0.5
    service.broker.close()


def test_cached_slot_implementation_roundtrip():
    from repro.app.system import static_side_slices
    from repro.fabric.device import get_device
    from repro.netlist.blocks import BlockFootprint, block_netlist
    from repro.par.placer import PlacerOptions
    from repro.reconfig.slots import plan_floorplan
    from repro.serve.cache import cached_slot_implementation

    device = get_device("XC3S400")
    floorplan = plan_floorplan(device, static_side_slices(), [600], [24])
    netlist = block_netlist(
        BlockFootprint("mod", slices=120, mean_activity=0.1), seed=8, interface_nets=10
    )
    cache = ArtifactCache(capacity=4)
    first = cached_slot_implementation(
        cache, netlist, floorplan, placer_options=PlacerOptions(steps=5)
    )
    second = cached_slot_implementation(
        cache, netlist, floorplan, placer_options=PlacerOptions(steps=5)
    )
    assert cache.stats.hits == 1 and cache.stats.misses == 1
    # The hit rehydrates a bit-exact copy, not the same object graph.
    assert second.design is not first.design
    assert second.anchor_count == first.anchor_count
    assert second.design.placement.as_dict() == first.design.placement.as_dict()


# ---------------------------------------------------- deadlines and failures


def test_deadline_expiry_skips_device_work():
    service = FleetService(workers=1, batched=True)
    expired = MeasurementRequest(
        request_id=1,
        tank_id="tank-x",
        level=0.5,
        deadline_s=service.clock() - 1.0,
    )
    service.submit(expired)
    service.start()
    assert service.await_responses(1, timeout_s=30)
    assert service.shutdown()
    (response,) = service.responses()
    assert response.status == "expired"
    assert response.level_measured is None
    assert service.metrics.counter("requests_expired") == 1
    assert service.metrics.counter("reconfigurations") == 0


def test_transient_fault_is_retried_with_backoff():
    requests = synthetic_load(4, n_tanks=2, max_attempts=3)
    service = run_service(
        requests, workers=1, max_batch=4, batched=True, fault_rate=1.0, seed=7
    )
    responses = by_id(service)
    assert len(responses) == 4
    for response in responses.values():
        assert response.ok
        assert response.attempts == 2  # first attempt faulted, retry served
    snap = service.metrics_snapshot()
    assert snap["counters"]["faults_injected"] == 4
    assert snap["counters"]["faults_scrubbed"] >= 1
    assert snap["counters"]["requests_retried"] == 4
    assert snap["broker"]["requeued"] == 4
    assert snap["histograms"]["retry_backoff_s"]["count"] == 4


def test_exhausted_retries_fail():
    requests = synthetic_load(2, n_tanks=1, max_attempts=1)
    service = run_service(
        requests, workers=1, batched=True, fault_rate=1.0, seed=3
    )
    for response in service.responses():
        assert response.status == "failed"
        assert "scrubbed" in response.error or "fault" in response.error
    assert service.metrics.counter("requests_failed") == 2


# -------------------------------------------------- backpressure and shutdown


def test_backpressure_rejects_when_full():
    service = FleetService(workers=1, queue_capacity=2)
    service.submit(MeasurementRequest(request_id=1, tank_id="a", level=0.5))
    service.submit(MeasurementRequest(request_id=2, tank_id="a", level=0.5))
    with pytest.raises(BrokerFullError) as err:
        service.submit(MeasurementRequest(request_id=3, tank_id="a", level=0.5))
    assert err.value.retry_after_s > 0
    assert service.broker.rejected == 1
    assert service.broker.depth == 2
    service.broker.close()


def test_clean_pool_shutdown_drains_queue():
    service = FleetService(workers=2, max_batch=4, batched=True)
    requests = synthetic_load(6, n_tanks=3)
    accepted, _ = service.submit_many(requests)
    service.start()
    assert service.shutdown(drain=True, timeout_s=120)
    assert all(not w.is_alive() for w in service.workers)
    assert len(service.responses()) == accepted
    with pytest.raises(RuntimeError):
        service.submit(MeasurementRequest(request_id=99, tank_id="a", level=0.5))


def test_immediate_shutdown_stops_workers():
    service = FleetService(workers=1).start()
    assert service.shutdown(drain=False, timeout_s=30)
    assert all(not w.is_alive() for w in service.workers)


# ----------------------------------------------------------- building blocks


def test_retry_policy_backoff_is_exponential_and_capped():
    policy = RetryPolicy(base_delay_s=0.01, factor=2.0, max_delay_s=0.05)
    assert policy.delay_s(1) == pytest.approx(0.01)
    assert policy.delay_s(2) == pytest.approx(0.02)
    assert policy.delay_s(3) == pytest.approx(0.04)
    assert policy.delay_s(4) == pytest.approx(0.05)  # capped
    with pytest.raises(ValueError):
        policy.delay_s(0)


def test_broker_groups_same_pipeline_requests():
    broker = RequestBroker(capacity=8)
    short = ("frontend", "amp_phase")
    for i, pipeline in enumerate(
        [STANDARD_PIPELINE, short, STANDARD_PIPELINE, STANDARD_PIPELINE]
    ):
        broker.submit(
            MeasurementRequest(request_id=i, tank_id="t", level=0.5, pipeline=pipeline)
        )
    same = lambda head, req: req.pipeline == head.pipeline
    first = broker.take(4, timeout_s=0.1, match=same)
    assert [r.request_id for r in first] == [0, 2, 3]
    second = broker.take(4, timeout_s=0.1, match=same)
    assert [r.request_id for r in second] == [1]


def test_histogram_percentiles():
    hist = Histogram()
    for value in range(1, 101):
        hist.observe(float(value))
    assert hist.percentile(50) == pytest.approx(50.5)
    assert hist.percentile(95) == pytest.approx(95.05)
    assert hist.count == 100
    with pytest.raises(ValueError):
        Histogram().percentile(50)


def test_metrics_snapshot_shape():
    metrics = Metrics()
    metrics.inc("requests_served", 3)
    metrics.add("energy_j", 0.5)
    metrics.observe("latency_s", 0.1)
    snap = metrics.snapshot()
    assert snap["counters"]["requests_served"] == 3
    assert snap["gauges"]["energy_j"] == pytest.approx(0.5)
    assert snap["histograms"]["latency_s"]["count"] == 1


def test_request_validation():
    with pytest.raises(ValueError):
        MeasurementRequest(request_id=1, tank_id="t", level=1.5)
    with pytest.raises(ValueError):
        MeasurementRequest(request_id=1, tank_id="t", level=0.5, max_attempts=0)
    with pytest.raises(ValueError):
        MeasurementRequest(request_id=1, tank_id="t", level=0.5, pipeline=())


# -------------------------------------------------------- concurrency stress


def _start_threads(n, target):
    threads = [threading.Thread(target=target, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    return threads


def _join_all(threads, timeout_s=30.0):
    for t in threads:
        t.join(timeout=timeout_s)
    assert not any(t.is_alive() for t in threads), "thread failed to finish"


def test_artifact_cache_survives_thread_hammering():
    """8 threads x 250 lookups over 16 keys: correct values, coherent
    counters, no eviction churn, no deadlock."""
    n_threads, ops, n_keys = 8, 250, 16
    cache = ArtifactCache(capacity=n_keys)
    barrier = threading.Barrier(n_threads)
    errors = []

    def hammer(worker):
        barrier.wait()
        try:
            for op in range(ops):
                key = ("artifact", (worker + op) % n_keys)
                value = cache.get_or_build(key, lambda k=key: ("built", k))
                assert value == ("built", key)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    _join_all(_start_threads(n_threads, hammer))
    assert not errors
    # Every get_or_build performs exactly one lookup; concurrent misses on
    # one key may build twice (documented stampede trade) but never lose
    # the entry or corrupt the counters.
    assert cache.stats.lookups == n_threads * ops
    assert cache.stats.hits + cache.stats.misses == cache.stats.lookups
    assert n_keys <= cache.stats.misses < n_threads * n_keys
    assert len(cache) == n_keys
    assert cache.stats.evictions == 0


def test_broker_concurrent_producers_and_consumers_lose_nothing():
    n_producers = n_consumers = 8
    per_producer = 32
    broker = RequestBroker(capacity=n_producers * per_producer)
    barrier = threading.Barrier(n_producers + n_consumers)
    taken_lock = threading.Lock()
    taken = []

    def produce(worker):
        barrier.wait()
        for i in range(per_producer):
            broker.submit(
                MeasurementRequest(
                    request_id=worker * per_producer + i, tank_id="t", level=0.5
                )
            )

    def consume(_worker):
        barrier.wait()
        while True:
            batch = broker.take(7, timeout_s=0.2)
            if batch:
                with taken_lock:
                    taken.extend(batch)
            elif broker.closed:
                return  # closed and drained

    producers = _start_threads(n_producers, produce)
    consumers = _start_threads(n_consumers, consume)
    _join_all(producers)
    broker.close()
    _join_all(consumers)

    ids = sorted(r.request_id for r in taken)
    assert ids == list(range(n_producers * per_producer))  # no loss, no dups
    assert broker.depth == 0
    assert broker.submitted == n_producers * per_producer
    assert broker.rejected == 0


def test_broker_shutdown_while_enqueueing_does_not_deadlock():
    """close() racing a herd of submitters: every thread exits, every
    accepted request is still drainable, late submits fail loudly."""
    broker = RequestBroker(capacity=64)
    n_threads = 8
    barrier = threading.Barrier(n_threads + 1)
    accepted = []
    refused = []
    lock = threading.Lock()

    def produce(worker):
        barrier.wait()
        for i in range(100):
            request = MeasurementRequest(
                request_id=worker * 100 + i, tank_id="t", level=0.5
            )
            try:
                broker.submit(request)
                with lock:
                    accepted.append(request.request_id)
            except (RuntimeError, BrokerFullError):
                with lock:
                    refused.append(request.request_id)

    producers = _start_threads(n_threads, produce)
    barrier.wait()  # release the herd, then close mid-flight
    broker.close()
    _join_all(producers)

    assert broker.closed
    drained = []
    while True:
        batch = broker.take(16, timeout_s=0.1)
        if not batch:
            break
        drained.extend(r.request_id for r in batch)
    assert sorted(drained) == sorted(accepted)  # accepted work survives close
    assert len(accepted) + len(refused) == n_threads * 100
    assert broker.depth == 0
    with pytest.raises(RuntimeError):
        broker.submit(MeasurementRequest(request_id=10**6, tank_id="t", level=0.5))


# ------------------------------------------------------- metrics edge cases


def test_histogram_percentile_edges():
    hist = Histogram()
    for value in (5.0, 1.0, 9.0, 3.0):
        hist.observe(value)
    assert hist.percentile(0) == hist.min == 1.0
    assert hist.percentile(100) == hist.max == 9.0
    with pytest.raises(ValueError):
        hist.percentile(-0.1)
    with pytest.raises(ValueError):
        hist.percentile(100.1)

    single = Histogram()
    single.observe(2.5)
    assert single.percentile(0) == single.percentile(50) == single.percentile(100) == 2.5

    with pytest.raises(ValueError):
        Histogram().percentile(50)  # empty reservoir


def test_empty_histogram_summary_has_fixed_shape():
    summary = Histogram().summary()
    assert summary == {
        "count": 0,
        "mean": 0.0,
        "min": None,
        "max": None,
        "p50": None,
        "p95": None,
    }


def test_metrics_snapshot_with_no_observations():
    assert Metrics().snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
    metrics = Metrics()
    assert metrics.counter("never_incremented") == 0
    assert metrics.gauge("never_set") == 0.0


def test_single_observation_histogram_summary_is_degenerate():
    """One observation: every statistic collapses to that value — the
    shape the trace report must render without dividing by zero."""
    hist = Histogram()
    hist.observe(0.25)
    summary = hist.summary()
    assert summary["count"] == 1
    for key in ("mean", "min", "max", "p50", "p95"):
        assert summary[key] == pytest.approx(0.25)


def test_cli_formatters_survive_missing_histograms():
    """serve-bench's table renderers on a run that observed nothing
    (zero requests): placeholders, not TypeError on None quantiles."""
    from repro.cli import _hist, _quantile_ms

    assert _quantile_ms({}, "latency_s", "p50") == "-"
    assert _quantile_ms({"histograms": {}}, "latency_s", "p95") == "-"
    empty = _hist({"histograms": {}}, "latency_s")
    assert empty["count"] == 0 and empty["p50"] is None
    # Zero-count summaries pass through unchanged...
    zero = {"histograms": {"latency_s": Histogram().summary()}}
    assert _quantile_ms(zero, "latency_s", "p50") == "-"
    # ...and real observations still format as milliseconds.
    populated = {"histograms": {"latency_s": {"p50": 0.125}}}
    assert _quantile_ms(populated, "latency_s", "p50") == "125 ms"


def test_artifact_cache_eviction_stress_with_concurrent_get_put():
    """Eviction under contention: capacity far below the key set while
    8 threads mix get/put/get_or_build.  The LRU bound, the counters and
    the returned values must all stay coherent."""
    capacity, n_keys, n_threads, ops = 4, 32, 8, 300
    cache = ArtifactCache(capacity=capacity)
    barrier = threading.Barrier(n_threads)
    errors = []

    def churn(worker):
        barrier.wait()
        try:
            for op in range(ops):
                key = ("artifact", (worker * 7 + op * 3) % n_keys)
                if op % 3 == 0:
                    cache.put(key, ("put", key))
                elif op % 3 == 1:
                    value = cache.get(key)
                    assert value is None or value[1] == key
                else:
                    value = cache.get_or_build(key, lambda k=key: ("built", k))
                    assert value[1] == key
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    _join_all(_start_threads(n_threads, churn))
    assert not errors
    assert len(cache) <= capacity  # the LRU bound holds under churn
    snap = cache.snapshot()
    assert snap["evictions"] > 0
    assert snap["hits"] + snap["misses"] == cache.stats.lookups
    assert 0.0 <= snap["hit_rate"] <= 1.0
    # Survivors are still readable and correct after the storm.
    for key in list(cache._entries):
        assert cache.get(key)[1] == key
