"""Tests for multi-slot arrangements, battery-life estimation, and the
gate-level adder/accumulator blocks."""

import pytest

from repro.app.modules import standard_modules
from repro.app.system import FpgaReconfigSystem, MicrocontrollerSystem, static_side_slices
from repro.core.battery import BatteryModel, estimate_lifetimes
from repro.netlist.logic import FunctionalNetlist, build_accumulator, build_adder
from repro.reconfig.multislot import (
    compare_arrangements,
    evaluate_resident_hot_module,
    evaluate_single_slot,
)
from repro.reconfig.ports import Icap, Jcap
from repro.sim.netlist_sim import NetlistSimulator


@pytest.fixture(scope="module")
def compiled_modules():
    return [m.compiled for m in standard_modules().values()]


class TestMultiSlot:
    def test_single_slot_misses_cycle_over_jcap(self, compiled_modules):
        report = evaluate_single_slot(static_side_slices(), compiled_modules, Jcap())
        assert not report.fits_period
        assert report.loads_per_cycle == 4

    def test_resident_hot_module_fits_over_jcap(self, compiled_modules):
        """The finding: keeping amp/phase resident makes the Spartan-3's
        JCAP-only reconfiguration fit the 100 ms measurement cycle."""
        report = evaluate_resident_hot_module(
            static_side_slices(), compiled_modules, "amp_phase", Jcap()
        )
        assert report.fits_period
        assert report.loads_per_cycle == 3

    def test_area_time_tradeoff(self, compiled_modules):
        """The two-slot arrangement pays with a larger device."""
        from repro.fabric.device import get_device

        one = evaluate_single_slot(static_side_slices(), compiled_modules, Jcap())
        two = evaluate_resident_hot_module(
            static_side_slices(), compiled_modules, "amp_phase", Jcap()
        )
        assert get_device(two.device).slices >= get_device(one.device).slices
        assert two.static_power_w >= one.static_power_w
        assert two.reconfig_time_per_cycle_s < one.reconfig_time_per_cycle_s

    def test_compare_matrix(self, compiled_modules):
        reports = compare_arrangements(
            static_side_slices(),
            compiled_modules,
            "amp_phase",
            {"jcap": Jcap(), "icap": Icap()},
        )
        assert len(reports) == 4
        by_name = {r.name: r for r in reports}
        assert by_name["single-slot/icap"].fits_period
        assert not by_name["single-slot/jcap"].fits_period
        assert by_name["resident-amp_phase/jcap"].fits_period

    def test_validation(self, compiled_modules):
        with pytest.raises(ValueError, match="no module named"):
            evaluate_resident_hot_module(800, compiled_modules, "ghost", Jcap())
        single = [compiled_modules[0]]
        with pytest.raises(ValueError, match="no modules left"):
            evaluate_resident_hot_module(800, single, single[0].name, Jcap())


class TestBattery:
    def test_usable_energy(self):
        battery = BatteryModel(capacity_mah=1000, voltage_v=3.0,
                               regulator_efficiency=1.0, usable_fraction=1.0)
        assert battery.usable_energy_j == pytest.approx(1000 * 1e-3 * 3600 * 3.0)

    def test_lifetime_scales_inversely_with_power(self):
        battery = BatteryModel()
        assert battery.lifetime_hours(0.001) == pytest.approx(
            2 * battery.lifetime_hours(0.002)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            BatteryModel(capacity_mah=0)
        with pytest.raises(ValueError):
            BatteryModel(regulator_efficiency=1.5)
        with pytest.raises(ValueError):
            BatteryModel().lifetime_hours(0.0)

    def test_variant_lifetimes(self):
        """The paper's framing: the MCU dominates battery life; the
        reconfigurable FPGA narrows the gap versus the flat FPGA."""
        from repro.reconfig.ports import Icap

        rows = estimate_lifetimes(
            {
                "mcu": MicrocontrollerSystem(),
                "reconfig": FpgaReconfigSystem(port=Icap(), clock_gating=True),
            }
        )
        by_label = {r.label: r for r in rows}
        assert by_label["mcu"].lifetime_days > by_label["reconfig"].lifetime_days
        assert all(r.lifetime_days > 0 for r in rows)
        assert all(r.cycles_total > 1000 for r in rows)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            estimate_lifetimes({})


class TestAdderBlocks:
    def test_adder_truth(self):
        fn = FunctionalNetlist("add")
        a = [fn.input(f"a{i}") for i in range(4)]
        b = [fn.input(f"b{i}") for i in range(4)]
        sums, cout = build_adder(fn, "u", a, b)
        sim = NetlistSimulator(fn)
        for x, y in [(0, 0), (3, 5), (9, 9), (15, 15), (7, 8)]:
            for i in range(4):
                sim.drive(f"a{i}", lambda _c, v=x, k=i: (v >> k) & 1)
                sim.drive(f"b{i}", lambda _c, v=y, k=i: (v >> k) & 1)
            sim.step()
            total = sim.value_of(sums) | (sim.values[cout] << 4)
            assert total == x + y, f"{x}+{y}"

    def test_adder_validation(self):
        fn = FunctionalNetlist("add")
        a = [fn.input("a0")]
        with pytest.raises(ValueError, match="equal"):
            build_adder(fn, "u", a, [])

    def test_accumulator_integrates(self):
        fn = FunctionalNetlist("acc")
        d = [fn.input(f"d{i}") for i in range(3)]
        state = build_accumulator(fn, "acc", d, width=8)
        sim = NetlistSimulator(fn)
        for i in range(3):
            sim.drive(f"d{i}", lambda _c, k=i: (5 >> k) & 1)  # add 5 per cycle
        for _ in range(10):
            sim.step()
        assert sim.value_of(state) == 50

    def test_accumulator_wraps(self):
        fn = FunctionalNetlist("acc")
        d = [fn.input("d0")]
        state = build_accumulator(fn, "acc", d, width=4)
        sim = NetlistSimulator(fn)
        sim.drive("d0", lambda _c: 1)
        for _ in range(20):
            sim.step()
        assert sim.value_of(state) == 20 % 16

    def test_accumulator_validation(self):
        fn = FunctionalNetlist("acc")
        d = [fn.input(f"d{i}") for i in range(9)]
        with pytest.raises(ValueError, match="wider"):
            build_accumulator(fn, "acc", d, width=8)
