"""Tests for the simulated-annealing placer."""

import pytest

from repro.fabric.device import get_device
from repro.fabric.grid import Grid, Region
from repro.netlist.cells import SiteKind
from repro.netlist.generate import chain_netlist, random_netlist
from repro.par.placer import Placement, PlacerOptions, net_hpwl, place, total_hpwl


@pytest.fixture
def dev():
    return get_device("XC3S200")


FAST = PlacerOptions(steps=15, moves_per_cell=2.0)


class TestPlacement:
    def test_assign_and_lookup(self, dev):
        p = Placement(dev, Grid(dev).full_region)
        from repro.fabric.grid import SliceCoord

        p.assign("a", SliceCoord(1, 2, 3))
        assert p.coord("a") == SliceCoord(1, 2, 3)
        assert p.occupant(SliceCoord(1, 2, 3)) == "a"

    def test_exclusive_site(self, dev):
        from repro.fabric.grid import SliceCoord

        p = Placement(dev, Grid(dev).full_region)
        p.assign("a", SliceCoord(0, 0, 0))
        with pytest.raises(ValueError, match="already holds"):
            p.assign("b", SliceCoord(0, 0, 0))

    def test_outside_region_rejected(self, dev):
        from repro.fabric.grid import SliceCoord

        p = Placement(dev, Region(0, 0, 1, 1))
        with pytest.raises(ValueError, match="outside"):
            p.assign("a", SliceCoord(5, 5, 0))

    def test_swap(self, dev):
        from repro.fabric.grid import SliceCoord

        p = Placement(dev, Grid(dev).full_region)
        ca, cb = SliceCoord(0, 0, 0), SliceCoord(3, 3, 1)
        p.assign("a", ca)
        p.assign("b", cb)
        p.swap("a", "b")
        assert p.coord("a") == cb
        assert p.coord("b") == ca
        assert p.occupant(ca) == "b"

    def test_move_frees_old_site(self, dev):
        from repro.fabric.grid import SliceCoord

        p = Placement(dev, Grid(dev).full_region)
        p.assign("a", SliceCoord(0, 0, 0))
        p.assign("a", SliceCoord(1, 1, 1))
        assert p.occupant(SliceCoord(0, 0, 0)) is None


class TestPlace:
    def test_all_cells_placed_legally(self, dev):
        nl = random_netlist("r", 80, seed=1)
        placement = place(nl, dev, options=FAST)
        coords = [placement.coord(c.name) for c in nl.cells]
        assert len(coords) == len(nl.cells)
        grid = Grid(dev)
        assert all(grid.is_valid(c) for c in coords)
        # Slice cells occupy distinct sites.
        slice_coords = [
            placement.coord(c.name) for c in nl.cells if c.ctype.site == SiteKind.SLICE
        ]
        assert len(set(slice_coords)) == len(slice_coords)

    def test_region_confinement(self, dev):
        nl = random_netlist("r", 50, seed=2)
        region = Region(0, 0, 4, dev.clb_rows - 1)
        placement = place(nl, dev, region=region, options=FAST)
        assert all(region.contains(placement.coord(c.name)) for c in nl.cells)

    def test_overfull_region_rejected(self, dev):
        nl = random_netlist("r", 100, seed=3)
        with pytest.raises(ValueError, match="holds only"):
            place(nl, dev, region=Region(0, 0, 1, 1), options=FAST)

    def test_annealing_beats_random(self, dev):
        """The annealer must improve substantially over the random start."""
        nl = random_netlist("r", 150, seed=4)
        random_pl = place(nl, dev, options=PlacerOptions(steps=0))
        good_pl = place(nl, dev, options=PlacerOptions(steps=40))
        assert total_hpwl(nl, good_pl) < 0.7 * total_hpwl(nl, random_pl)

    def test_deterministic_per_seed(self, dev):
        nl = random_netlist("r", 40, seed=5)
        a = place(nl, dev, options=PlacerOptions(seed=7, steps=10))
        b = place(nl, dev, options=PlacerOptions(seed=7, steps=10))
        assert a.as_dict() == b.as_dict()

    def test_power_mode_pulls_hot_nets_tighter(self, dev):
        """Activity-weighted placement: hot nets end up shorter than they
        do under plain wirelength placement."""
        nl = random_netlist("r", 200, seed=6)
        hot = sorted(
            (n for n in nl.nets if not n.is_clock), key=lambda n: n.activity, reverse=True
        )[:10]
        wl = place(nl, dev, options=PlacerOptions(steps=40, mode="wirelength", seed=1))
        pw = place(nl, dev, options=PlacerOptions(steps=40, mode="power", seed=1))
        hot_wl = sum(net_hpwl(n, wl) for n in hot)
        hot_pw = sum(net_hpwl(n, pw) for n in hot)
        assert hot_pw <= hot_wl

    def test_chain_placement_is_tight(self, dev):
        nl = chain_netlist("c", 30)
        placement = place(nl, dev, options=PlacerOptions(steps=50))
        assert total_hpwl(nl, placement) < 3 * len(nl.nets)
