"""Property-based tests of the counter-mode fault RNG.

The in-batch retry sweeps and the mixed faulty/clean oracle both stand
on one claim: in ``mode="counter"`` every fault draw is a pure function
of ``(seed, request_id, attempt)`` — independent of call order, batch
composition, interleaving and engine.  These tests state that claim as
properties and let hypothesis hunt for a composition that breaks it.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import MeasurementRequest
from repro.serve.batching import FAULT_MODES, STANDARD_PIPELINE, FaultInjector
from repro.serve.faultrng import CounterRng

ids = st.integers(min_value=0, max_value=2**31)
seeds = st.integers(min_value=0, max_value=2**31)
attempts = st.integers(min_value=1, max_value=6)


def _request(request_id, n_attempts=1):
    request = MeasurementRequest(
        request_id=request_id,
        tank_id=f"tank-{request_id % 5:03d}",
        level=0.5,
        pipeline=STANDARD_PIPELINE,
    )
    request.attempts = n_attempts
    return request


# ----------------------------------------------------------- CounterRng


@given(seed=seeds, request_id=ids, attempt=attempts)
@settings(max_examples=200, deadline=None)
def test_uniform_is_pure_and_in_unit_interval(seed, request_id, attempt):
    rng = CounterRng(seed)
    u = rng.uniform("strike", request_id, attempt)
    assert 0.0 <= u < 1.0
    # Pure: a fresh instance over the same key reproduces the draw.
    assert CounterRng(seed).uniform("strike", request_id, attempt) == u


@given(seed=seeds, request_id=ids, attempt=attempts, n=st.integers(1, 64))
@settings(max_examples=200, deadline=None)
def test_randbelow_range_and_purity(seed, request_id, attempt, n):
    rng = CounterRng(seed)
    value = rng.randbelow(n, "stage", request_id, attempt)
    assert 0 <= value < n
    assert CounterRng(seed).randbelow(n, "stage", request_id, attempt) == value


def test_randbelow_rejects_non_positive_bounds():
    rng = CounterRng(0)
    with pytest.raises(ValueError):
        rng.randbelow(0, "stage", 1, 1)
    with pytest.raises(ValueError):
        rng.randbelow(-3, "stage", 1, 1)


@given(seed=seeds, request_id=ids, attempt=attempts)
@settings(max_examples=100, deadline=None)
def test_labels_are_domain_separated(seed, request_id, attempt):
    rng = CounterRng(seed)
    assert rng.digest("strike", request_id, attempt) != rng.digest(
        "stage", request_id, attempt
    )


@given(seed=seeds, request_id=ids, attempt=attempts, k=st.integers(1, 16))
@settings(max_examples=100, deadline=None)
def test_stream_replays_identically(seed, request_id, attempt, k):
    rng = CounterRng(seed)
    first = [rng.stream("burst", request_id, attempt).random() for _ in range(k)]
    again = [rng.stream("burst", request_id, attempt).random() for _ in range(k)]
    assert first == again
    assert len(set(first)) == 1  # each stream restarts from the same key


# -------------------------------------------------------- FaultInjector


@given(
    seed=seeds,
    rate=st.floats(0.0, 1.0),
    retry_rate=st.floats(0.0, 1.0),
    request_id=ids,
    attempt=attempts,
)
@settings(max_examples=200, deadline=None)
def test_predict_stage_range_and_purity(seed, rate, retry_rate, request_id, attempt):
    injector = FaultInjector(rate, seed=seed, retry_rate=retry_rate, mode="counter")
    stage = injector.predict_stage(request_id, attempt, len(STANDARD_PIPELINE))
    assert stage is None or 0 <= stage < len(STANDARD_PIPELINE)
    # predict consumes nothing: asking again (or about other requests
    # in between) never changes the answer.
    injector.predict_stage(request_id + 1, attempt, len(STANDARD_PIPELINE))
    assert injector.predict_stage(request_id, attempt, len(STANDARD_PIPELINE)) == stage


@given(
    seed=seeds,
    rate=st.floats(0.05, 1.0),
    data=st.lists(st.tuples(ids, attempts), min_size=2, max_size=12, unique=True),
)
@settings(max_examples=100, deadline=None)
def test_schedule_is_independent_of_draw_order(seed, rate, data):
    """The whole-fleet fault schedule is a set, not a sequence: two
    injectors asked about the same (request, attempt) keys in different
    orders agree on every draw."""
    forward = FaultInjector(rate, seed=seed, retry_rate=rate / 2, mode="counter")
    backward = FaultInjector(rate, seed=seed, retry_rate=rate / 2, mode="counter")
    schedule = {
        (rid, att): forward.fault_stage(_request(rid, att)) for rid, att in data
    }
    for rid, att in reversed(data):
        assert backward.fault_stage(_request(rid, att)) == schedule[(rid, att)]
    assert forward.fired == backward.fired


@given(seed=seeds, data=st.lists(st.tuples(ids, attempts), min_size=1, max_size=8))
@settings(max_examples=100, deadline=None)
def test_scrub_streams_are_independent_between_events(seed, data):
    """Each fault event's burst draws depend only on its own key, not on
    how many other scrub events ran before it."""
    injector = FaultInjector(1.0, seed=seed, mode="counter")
    expected = {}
    for rid, att in data:
        expected[(rid, att)] = [
            injector.scrub_rng(_request(rid, att)).randrange(1 << 20)
            for _ in range(3)
        ]
    shuffled = list(data)
    random.Random(seed).shuffle(shuffled)
    for rid, att in shuffled:
        draws = [
            injector.scrub_rng(_request(rid, att)).randrange(1 << 20)
            for _ in range(3)
        ]
        assert draws == expected[(rid, att)]


def test_counter_mode_rejects_max_faults():
    with pytest.raises(ValueError, match="order-dependent"):
        FaultInjector(0.5, mode="counter", max_faults=3)


def test_sequential_mode_cannot_predict():
    injector = FaultInjector(0.5, seed=1)
    assert not injector.order_independent
    with pytest.raises(RuntimeError):
        injector.predict_stage(0, 1, len(STANDARD_PIPELINE))


def test_unknown_mode_rejected():
    assert FAULT_MODES == ("sequential", "counter")
    with pytest.raises(ValueError, match="mode"):
        FaultInjector(0.5, mode="chaotic")


def test_predict_stage_validates_stage_count():
    injector = FaultInjector(0.5, mode="counter")
    with pytest.raises(ValueError):
        injector.predict_stage(0, 1, 0)


@given(seed=seeds)
@settings(max_examples=50, deadline=None)
def test_counter_strike_rate_tracks_configured_rate(seed):
    """Sanity on the digest-to-uniform mapping: over many keys the
    realized first-attempt strike fraction lands near ``rate``."""
    injector = FaultInjector(0.3, seed=seed, mode="counter")
    hits = sum(
        injector.predict_stage(rid, 1, len(STANDARD_PIPELINE)) is not None
        for rid in range(400)
    )
    assert 0.2 < hits / 400 < 0.4
