"""Supervision layer: circuit breaker, admission control, worker restart,
chaos injection, and the failed-batch / throughput metric regressions."""

import time

import pytest

from repro.chaos import ChaosConfig, ChaosExecutorError, ChaosMonkey, WorkerCrash
from repro.serve import (
    FleetService,
    MeasurementRequest,
    OverloadShedError,
    RequestBroker,
)
from repro.serve.metrics import Metrics
from repro.serve.requests import BrokerFullError
from repro.serve.supervisor import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    AdmissionController,
    CircuitBreaker,
    SupervisorConfig,
)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def _request(request_id, **kwargs):
    kwargs.setdefault("tank_id", "t")
    return MeasurementRequest(request_id=request_id, level=0.5, **kwargs)


# ------------------------------------------------------------- circuit breaker


def test_breaker_full_state_machine_on_a_fake_clock():
    clock = FakeClock()
    metrics = Metrics()
    breaker = CircuitBreaker(
        threshold=3, cooldown_s=1.0, clock=clock, metrics=metrics, name="w0"
    )
    # Closed: failures below the threshold keep serving.
    assert breaker.state == BREAKER_CLOSED
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.allow()
    assert breaker.state == BREAKER_CLOSED
    # A success resets the consecutive count entirely.
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == BREAKER_CLOSED
    # The third consecutive failure trips it open.
    breaker.record_failure()
    assert breaker.state == BREAKER_OPEN
    assert metrics.counter("breaker_trips") == 1
    assert not breaker.allow()
    assert breaker.cooldown_remaining_s() == pytest.approx(1.0)
    # Cooldown elapses: exactly one probe is allowed (half-open).
    clock.advance(1.5)
    assert breaker.cooldown_remaining_s() == 0.0
    assert breaker.allow()
    assert breaker.state == BREAKER_HALF_OPEN
    assert metrics.counter("breaker_probes") == 1
    # Probe fails: straight back to quarantine.
    breaker.record_failure()
    assert breaker.state == BREAKER_OPEN
    assert metrics.counter("breaker_trips") == 2
    assert not breaker.allow()
    # Second cooldown, successful probe: closed again, reset counted.
    clock.advance(2.0)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == BREAKER_CLOSED
    assert metrics.counter("breaker_resets") == 1
    snap = breaker.snapshot()
    assert snap == {
        "state": "closed",
        "consecutive_failures": 0,
        "trips": 2,
        "resets": 1,
        "probes": 2,
    }


def test_breaker_rejects_invalid_parameters():
    with pytest.raises(ValueError):
        CircuitBreaker(threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown_s=-1.0)


# ---------------------------------------------------------- admission control


def test_admission_never_sheds_cold_or_expired():
    admission = AdmissionController(workers=2)
    # Cold start: no observations, estimate 0, nothing shed at any depth.
    assert admission.estimated_delay_s(100) == 0.0
    assert not admission.should_shed(deadline_s=100.5, now=100.0, depth=100)
    admission.observe_batch(4, 8.0)  # 2 s per request
    # Already-expired deadlines still flow through (answered "expired").
    assert not admission.should_shed(deadline_s=99.0, now=100.0, depth=100)
    assert not admission.should_shed(deadline_s=None, now=100.0, depth=100)


def test_admission_ewma_and_shed_decision():
    admission = AdmissionController(workers=2, alpha=0.5)
    admission.observe_batch(4, 8.0)  # 2.0 s/request
    assert admission.per_request_s() == pytest.approx(2.0)
    admission.observe_batch(2, 2.0)  # 1.0 s/request -> EWMA 1.5
    assert admission.per_request_s() == pytest.approx(1.5)
    # 4 queued ahead / 2 workers * 1.5 s = 3 s estimated delay.
    assert admission.estimated_delay_s(4) == pytest.approx(3.0)
    assert admission.should_shed(deadline_s=102.0, now=100.0, depth=4)
    assert not admission.should_shed(deadline_s=104.0, now=100.0, depth=4)
    assert admission.snapshot() == {"observed_batches": 2, "per_request_s": 1.5}


def test_admission_rejects_invalid_parameters():
    with pytest.raises(ValueError):
        AdmissionController(workers=0)
    with pytest.raises(ValueError):
        AdmissionController(workers=1, alpha=0.0)


def test_service_sheds_doomed_submit_early():
    service = FleetService(workers=2, queue_capacity=8, supervise=False)
    # Seed the admission estimator: 1 s per request, 2 workers.
    service.admission.observe_batch(4, 4.0)
    service.submit(_request(1))  # no deadline: occupies the queue
    now = service.clock()
    with pytest.raises(OverloadShedError) as excinfo:
        service.submit(_request(2, deadline_s=now + 0.01))
    assert excinfo.value.estimated_delay_s > 0
    assert isinstance(excinfo.value, BrokerFullError)
    assert service.metrics.counter("requests_shed_early") == 1
    # A generous deadline clears the queue-delay estimate and is admitted.
    service.submit(_request(3, deadline_s=service.clock() + 60.0))
    # submit_many treats the shed like any rejection.
    accepted, rejected = service.submit_many(
        [_request(4, deadline_s=service.clock() + 0.01)]
    )
    assert (accepted, len(rejected)) == (0, 1)


def test_scheduler_sheds_expired_requests_at_assembly():
    service = FleetService(workers=1, queue_capacity=8, supervise=False)
    service.submit(_request(1, deadline_s=service.clock() - 1.0))  # already dead
    assert service.scheduler.next_batch(timeout_s=0.0) is None
    (response,) = service.responses()
    assert response.status == "expired"
    assert "shed" in response.error
    assert response.latency_s >= 0.0
    assert service.metrics.counter("requests_shed_expired") == 1
    assert service.metrics.counter("requests_expired") == 1


# ------------------------------------------------------------ chaos injection


def test_chaos_budgets_and_determinism():
    batch = type("B", (), {"batch_id": 7})()
    counts = []
    for _ in range(2):
        monkey = ChaosMonkey(seed=42, crash_rate=1.0, max_crashes=2)
        fired = 0
        for _ in range(10):
            try:
                monkey.on_batch(0, batch)
            except WorkerCrash:
                fired += 1
        counts.append(fired)
        assert monkey.snapshot()["crashes_injected"] == 2
    assert counts == [2, 2]  # seeded: exact counts, run to run


def test_chaos_exec_errors_are_plain_exceptions():
    batch = type("B", (), {"batch_id": 1})()
    monkey = ChaosMonkey(seed=0, exec_error_rate=1.0, max_exec_errors=1)
    with pytest.raises(ChaosExecutorError):
        monkey.on_execute(3, batch)
    monkey.on_execute(3, batch)  # budget spent: no-op
    assert issubclass(ChaosExecutorError, Exception)
    # WorkerCrash must escape a worker's `except Exception` guard.
    assert issubclass(WorkerCrash, BaseException)
    assert not issubclass(WorkerCrash, Exception)


def test_chaos_skewed_clock_is_monotonic_and_bounded():
    base = FakeClock(now=50.0)
    monkey = ChaosMonkey(seed=3, clock_skew_s=0.01)
    clock = monkey.skewed_clock(base)
    last = None
    for i in range(500):
        base.advance(0.001)
        value = clock()
        assert abs(value - base.now) <= 0.01 + 1e-9
        if last is not None:
            assert value >= last
        last = value
    # Zero skew returns the base clock untouched.
    assert ChaosMonkey(seed=0).skewed_clock(time.monotonic) is time.monotonic


def test_chaos_config_validation():
    with pytest.raises(ValueError):
        ChaosConfig(crash_rate=1.5)
    with pytest.raises(ValueError):
        ChaosConfig(exec_error_rate=-0.1)
    with pytest.raises(ValueError):
        ChaosConfig(clock_skew_s=-1.0)
    with pytest.raises(ValueError):
        ChaosConfig(max_crashes=-1)


def test_supervisor_config_validation():
    with pytest.raises(ValueError):
        SupervisorConfig(interval_s=0.0)
    with pytest.raises(ValueError):
        SupervisorConfig(breaker_threshold=0)
    with pytest.raises(ValueError):
        SupervisorConfig(admission_alpha=0.0)
    with pytest.raises(ValueError):
        SupervisorConfig(max_restarts_per_worker=-1)


# -------------------------------------------------------------- broker restore


def test_restore_redelivers_at_the_head_of_the_queue():
    broker = RequestBroker(capacity=4)
    broker.submit(_request(1))
    broker.submit(_request(2))
    broker.restore([_request(8), _request(9)])
    assert broker.redelivered == 2
    taken = broker.take(4, timeout_s=0.0)
    assert [r.request_id for r in taken] == [8, 9, 1, 2]
    # Restore bypasses both capacity and the closed flag: admitted work
    # survives a drain shutdown.
    broker.close()
    broker.restore([_request(5)])
    assert [r.request_id for r in broker.take(1, timeout_s=0.0)] == [5]


# ----------------------------------------------- crash restart and re-delivery


def test_supervisor_restarts_crashed_worker_and_redelivers_batch():
    monkey = ChaosMonkey(seed=0, crash_rate=1.0, max_crashes=1)
    service = FleetService(
        workers=1,
        queue_capacity=16,
        chaos=monkey,
        supervisor_config=SupervisorConfig(interval_s=0.01),
    )
    requests = [_request(i, tank_id=f"t{i}") for i in range(6)]
    accepted, rejected = service.submit_many(requests)
    assert (accepted, rejected) == (6, [])
    service.start()
    assert service.await_responses(6, timeout_s=60.0)
    assert service.shutdown(drain=True)
    snap = service.metrics_snapshot()
    assert snap["counters"]["worker_crashes"] == 1
    assert snap["counters"]["worker_restarts"] == 1
    assert snap["counters"]["requests_redelivered"] >= 1
    assert snap["broker"]["redelivered"] >= 1
    assert snap["supervisor"]["total_restarts"] == 1
    responses = service.responses()
    assert len(responses) == 6
    assert all(r.ok for r in responses)
    # The replacement worker is a different object under the same id.
    assert service.workers[0].worker_id == 0
    assert service.workers[0].failure is None


def test_supervisor_check_once_is_deterministic_without_the_thread():
    monkey = ChaosMonkey(seed=0, crash_rate=1.0, max_crashes=1)
    service = FleetService(
        workers=1, queue_capacity=8, chaos=monkey, supervise=False
    )
    from repro.serve.supervisor import WorkerSupervisor

    supervisor = WorkerSupervisor(service, SupervisorConfig())
    service.submit_many([_request(i) for i in range(3)])
    crashed = service.workers[0]
    crashed.start()
    crashed.join(timeout=30.0)
    assert not crashed.is_alive()
    assert isinstance(crashed.failure, WorkerCrash)
    assert crashed.current_batch is not None
    # One sweep restarts it; a second sweep finds nothing to do.
    assert supervisor.check_once() == 1
    assert supervisor.check_once() == 0
    assert service.workers[0] is not crashed
    assert service.metrics.counter("requests_redelivered") == 3
    service.start()
    assert service.await_responses(3, timeout_s=60.0)
    service.shutdown()
    assert all(r.ok for r in service.responses())


def test_supervisor_detects_and_clears_heartbeat_stalls():
    clock = FakeClock(now=100.0)
    service = FleetService(workers=1, supervise=False, clock=clock)
    from repro.serve.supervisor import WorkerSupervisor

    supervisor = WorkerSupervisor(
        service, SupervisorConfig(heartbeat_timeout_s=1.0)
    )
    worker = service.workers[0]
    worker.is_alive = lambda: True  # stalled, not dead: thread still up
    worker.last_heartbeat = clock()
    clock.advance(5.0)
    assert supervisor.check_once() == 0  # a stall is flagged, not restarted
    # Counted once per stall, not once per sweep.
    assert supervisor.check_once() == 0
    assert service.metrics.counter("worker_stalls") == 1
    # The heartbeat resumes: the stall flag clears, a later stall recounts.
    worker.last_heartbeat = clock()
    supervisor.check_once()
    clock.advance(5.0)
    supervisor.check_once()
    assert service.metrics.counter("worker_stalls") == 2


def test_tracer_events_mark_supervision_in_the_runtime_trace():
    from repro.trace import Tracer

    tracer = Tracer()
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=1, cooldown_s=0.5, clock=clock, tracer=tracer)
    breaker.record_failure()  # trips: threshold 1
    clock.advance(1.0)
    assert breaker.allow()  # half-open probe
    breaker.record_success()  # reset
    names = [span.name for span in tracer.runtime.spans]
    assert names == ["breaker_trip", "breaker_probe", "breaker_reset"]
    trip = tracer.runtime.spans[0]
    assert trip.t0_s == trip.t1_s  # zero-duration marker
    assert trip.attrs["consecutive_failures"] == 1
    # Disabled tracing keeps events zero-cost no-ops.
    off = Tracer(enabled=False)
    off.event("breaker_trip")
    assert not off.runtime.spans


def test_supervisor_respects_the_restart_budget():
    service = FleetService(workers=1, queue_capacity=8, supervise=False)
    from repro.serve.supervisor import WorkerSupervisor

    supervisor = WorkerSupervisor(
        service, SupervisorConfig(max_restarts_per_worker=0)
    )
    worker = service.workers[0]
    worker.failure = RuntimeError("synthetic crash")  # dead, never started
    assert supervisor.check_once() == 0
    assert service.metrics.counter("workers_abandoned") == 1
    assert service.workers[0] is worker  # not replaced
    # Abandonment is recorded once, not per sweep.
    assert supervisor.check_once() == 0
    assert service.metrics.counter("workers_abandoned") == 1


# ---------------------------------------- failed batches and metric integrity


def test_failed_batches_report_real_latency_and_failure_counter():
    """Regression: the defensive failed-batch path delivered responses
    with ``latency_s=0.0``, silently dragging the latency histogram down;
    failures were also invisible in the counters."""
    monkey = ChaosMonkey(seed=0, exec_error_rate=1.0)  # every batch faults
    service = FleetService(
        workers=1,
        queue_capacity=8,
        chaos=monkey,
        supervisor_config=SupervisorConfig(
            breaker_threshold=100, breaker_cooldown_s=0.01
        ),
    )
    service.submit_many([_request(i, max_attempts=2) for i in range(3)])
    service.start()
    assert service.await_responses(3, timeout_s=60.0)
    service.shutdown()
    responses = service.responses()
    assert len(responses) == 3
    assert all(r.status == "failed" for r in responses)
    assert all(r.latency_s > 0.0 for r in responses)
    assert all(r.attempts >= 2 for r in responses)
    snap = service.metrics_snapshot()
    assert snap["counters"]["requests_failed"] == 3
    assert snap["counters"]["requests_retried"] >= 3
    assert snap["counters"]["worker_errors"] >= 2
    assert snap["histograms"]["latency_s"]["min"] > 0.0


def test_persistent_executor_faults_trip_the_breaker():
    monkey = ChaosMonkey(seed=0, exec_error_rate=1.0)
    service = FleetService(
        workers=1,
        queue_capacity=16,
        chaos=monkey,
        supervisor_config=SupervisorConfig(
            breaker_threshold=2, breaker_cooldown_s=0.01
        ),
    )
    service.submit_many([_request(i, max_attempts=2) for i in range(6)])
    service.start()
    assert service.await_responses(6, timeout_s=60.0)
    service.shutdown()
    snap = service.metrics_snapshot()
    assert snap["counters"]["breaker_trips"] >= 1
    assert snap["counters"]["breaker_probes"] >= 1
    breaker = snap["supervisor"]["breakers"][0]
    assert breaker["trips"] >= 1


# ------------------------------------------------- throughput metric regression


def test_idle_service_reports_zero_throughput():
    """Regression: with no time base (nothing submitted or started) the
    snapshot used elapsed=1e-9 and reported an absurd requests_per_s."""
    service = FleetService(workers=1, supervise=False)
    snap = service.metrics_snapshot()
    assert snap["service"]["elapsed_s"] == 0.0
    assert snap["service"]["requests_per_s"] == 0.0


def test_first_submit_sets_the_time_base_once():
    clock = FakeClock(now=10.0)
    service = FleetService(workers=1, supervise=False, clock=clock)
    service.submit(_request(1))
    clock.advance(5.0)
    service.submit(_request(2))  # must NOT move the epoch
    assert service._start_time == pytest.approx(10.0)
    clock.advance(5.0)
    snap = service.metrics_snapshot()
    assert snap["service"]["elapsed_s"] == pytest.approx(10.0)


def test_shutdown_and_await_run_on_the_injected_clock():
    clock = FakeClock(now=0.0)
    service = FleetService(workers=1, supervise=False, clock=clock)
    # Nothing queued and never started: a fake-clock timeout must expire
    # without touching the real clock.
    assert not service.await_responses(1, timeout_s=0.0)
    assert service.shutdown(drain=False, timeout_s=0.0)
