"""Tests for the congestion-negotiated router."""

import pytest

from repro.fabric.device import get_device
from repro.netlist.generate import chain_netlist, random_netlist
from repro.par.placer import PlacerOptions, place
from repro.par.router import RouterOptions, base_cost, route, route_single_net
from repro.fabric.routing import RoutingGraph
from repro.fabric.wires import DIRECT, DOUBLE, HEX, LONG


@pytest.fixture
def dev():
    return get_device("XC3S200")


FAST_PLACE = PlacerOptions(steps=15)


class TestBaseCost:
    def test_modes_distinct(self):
        # Performance mode: long lines cheap per CLB.
        perf = [base_cost(w, "performance") / w.span for w in (DIRECT, LONG)]
        assert perf[1] < perf[0]
        # Power mode: long lines expensive per CLB.
        power = [base_cost(w, "power") / w.span for w in (DIRECT, LONG)]
        assert power[1] > power[0]

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown router mode"):
            RouterOptions(mode="fastest")


class TestRouteSingleNet:
    def test_tree_reaches_all_sinks(self, dev):
        nl = random_netlist("r", 60, seed=1)
        placement = place(nl, dev, options=FAST_PLACE)
        graph = RoutingGraph(dev)
        for net in nl.nets:
            if net.is_clock:
                continue
            routed = route_single_net(net, placement, graph, RouterOptions())
            assert routed.is_complete(), f"net {net.name} incomplete"

    def test_same_clb_net_needs_no_segments(self, dev):
        nl = chain_netlist("c", 2)
        placement = place(nl, dev, options=PlacerOptions(steps=30))
        # Force both cells into the same CLB.
        from repro.fabric.grid import SliceCoord

        placement.assign("s0", SliceCoord(5, 5, 0))
        placement.assign("s1", SliceCoord(5, 5, 1))
        graph = RoutingGraph(dev)
        routed = route_single_net(nl.net("q0"), placement, graph, RouterOptions())
        assert routed.segments == []

    def test_power_mode_prefers_short_wires(self, dev):
        """Power routing covers distance with direct/double rather than
        long lines (the Figure 6 re-routing)."""
        nl = chain_netlist("c", 2, activity=0.4)
        from repro.fabric.grid import SliceCoord

        placement = place(nl, dev, options=PlacerOptions(steps=0))
        placement.assign("s0", SliceCoord(0, 5, 0))
        placement.assign("s1", SliceCoord(18, 5, 0))
        net = nl.net("q0")
        perf = route_single_net(net, placement, RoutingGraph(dev), RouterOptions(mode="performance"))
        power = route_single_net(net, placement, RoutingGraph(dev), RouterOptions(mode="power"))
        assert power.capacitance_pf < perf.capacitance_pf
        assert perf.delay_ns() <= power.delay_ns()


class TestFullRoute:
    def test_route_legalises(self, dev):
        nl = random_netlist("r", 120, seed=2)
        placement = place(nl, dev, options=FAST_PLACE)
        result = route(nl, placement, dev)
        assert result.legal
        assert all(rn.is_complete() for rn in result.nets.values())

    def test_clock_nets_skipped(self, dev):
        nl = random_netlist("r", 50, seed=3)
        placement = place(nl, dev, options=FAST_PLACE)
        result = route(nl, placement, dev)
        clock_names = {n.name for n in nl.nets if n.is_clock}
        assert not clock_names & set(result.nets)

    def test_congestion_negotiation_on_dense_design(self, dev):
        """Cram a dense design into a small region so channels contend."""
        from repro.fabric.grid import Region

        nl = random_netlist("r", 140, seed=4, avg_fanout=4.0)
        region = Region(0, 0, 5, dev.clb_rows - 1)
        placement = place(nl, dev, region=region, options=FAST_PLACE)
        result = route(nl, placement, dev, options=RouterOptions(max_iterations=20))
        assert result.legal

    def test_route_into_occupied_graph(self, dev):
        """Routing a module into fabric already holding the static side."""
        static = random_netlist("s", 60, seed=5)
        from repro.fabric.grid import Region

        left = Region(0, 0, 7, dev.clb_rows - 1)
        right = Region(8, 0, dev.clb_columns - 1, dev.clb_rows - 1)
        p1 = place(static, dev, region=left, options=FAST_PLACE)
        r1 = route(static, p1, dev)
        module = random_netlist("m", 60, seed=6)
        p2 = place(module, dev, region=right, options=FAST_PLACE)
        r2 = route(module, p2, dev, graph=r1.graph)
        assert r2.legal

    def test_total_capacitance_positive(self, dev):
        nl = random_netlist("r", 40, seed=7)
        placement = place(nl, dev, options=FAST_PLACE)
        result = route(nl, placement, dev)
        assert result.total_capacitance_pf > 0
        assert result.total_wirelength >= 0
