"""Tests for dataflow-structured module netlists and the supply-rail
power breakdown."""

import pytest

from repro.app.modules import build_filter_graph
from repro.fabric.device import get_device
from repro.netlist.cells import IOB, SLICE_REG
from repro.netlist.netlist import Netlist
from repro.par.design import Design
from repro.par.placer import PlacerOptions, place
from repro.par.router import route
from repro.power.estimator import VCCAUX_STANDBY_W, PowerEstimator
from repro.sysgen.compile import compile_graph
from repro.sysgen.graph import DataflowGraph


class TestStructuredNetlist:
    @pytest.fixture(scope="class")
    def module(self):
        g = DataflowGraph("small")
        g.node("in", "input", 16)
        g.node("m", "mac", 16)
        g.node("a", "add", 16)
        g.node("out", "output", 16)
        g.chain("in", "m", "a", "out")
        return compile_graph(g)

    def test_slice_total_matches_compiled(self, module):
        structured = module.structured_netlist(seed=3)
        assert structured.stats().slices == module.slices
        assert structured.stats().multipliers == module.multipliers

    def test_edges_become_nets(self, module):
        structured = module.structured_netlist(seed=3)
        edge_nets = [n for n in structured.nets if n.name.startswith("edge")]
        assert len(edge_nets) == len(module.graph.edges)
        # Edge nets connect cells of the two operators they join.
        net = structured.net("edge0/in->m")
        assert net.driver.name.startswith("in/")
        assert net.sinks[0].name.startswith("m/")

    def test_structured_netlist_validates(self, module):
        module.structured_netlist(seed=1).validate()

    def test_places_and_routes(self, module):
        structured = module.structured_netlist(seed=2)
        dev = get_device("XC3S200")
        placement = place(structured, dev, options=PlacerOptions(steps=8))
        result = route(structured, placement, dev)
        assert result.legal

    def test_graphless_module_rejected(self, module):
        import dataclasses

        stripped = dataclasses.replace(module, graph=None)
        with pytest.raises(ValueError, match="no dataflow graph"):
            stripped.structured_netlist()

    def test_real_filter_module(self):
        module = compile_graph(build_filter_graph())
        structured = module.structured_netlist(seed=4)
        assert structured.stats().slices == module.slices
        structured.validate()


class TestSupplyRails:
    @pytest.fixture
    def design_with_io(self):
        dev = get_device("XC3S200")
        nl = Netlist("io")
        pad = nl.add_cell("pad", IOB)
        core = [nl.add_cell(f"c{i}", SLICE_REG) for i in range(4)]
        nl.add_net("pad_in", pad, [core[0]], activity=0.3)
        nl.add_net("n0", core[0], [core[1]], activity=0.1)
        nl.add_net("n1", core[1], [core[2], core[3]], activity=0.1)
        nl.add_net("n2", core[2], [core[3]], activity=0.05)
        placement = place(nl, dev, options=PlacerOptions(steps=5))
        routing = route(nl, placement, dev)
        return Design(nl, dev, placement=placement, routed_nets=routing.nets, graph=routing.graph)

    def test_rails_sum_to_total(self, design_with_io):
        report = PowerEstimator(design_with_io, 50.0).report()
        rails = report.rails()
        assert set(rails) == {"VCCINT", "VCCAUX", "VCCO"}
        assert rails["VCCINT"] + rails["VCCO"] == pytest.approx(report.total_w)
        assert rails["VCCAUX"] == VCCAUX_STANDBY_W

    def test_io_rail_positive_with_iob_driver(self, design_with_io):
        report = PowerEstimator(design_with_io, 50.0).report()
        assert report.io_w > 0
        # A 12 pF board load at 3.3 V dwarfs the internal nets' power.
        assert report.io_w > report.routing_w

    def test_no_iob_no_vcco(self):
        from repro.netlist.generate import chain_netlist

        dev = get_device("XC3S200")
        nl = chain_netlist("core_only", 6)
        placement = place(nl, dev, options=PlacerOptions(steps=5))
        routing = route(nl, placement, dev)
        design = Design(nl, dev, placement=placement, routed_nets=routing.nets, graph=routing.graph)
        report = PowerEstimator(design, 50.0).report()
        assert report.io_w == 0.0
        assert report.rails()["VCCO"] == 0.0
