"""Tests for the structured block-netlist builder."""

import pytest

from repro.netlist.blocks import BlockFootprint, block_netlist
from repro.netlist.cells import SiteKind


class TestFootprint:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least 1"):
            BlockFootprint("x", slices=0)
        with pytest.raises(ValueError, match="sum"):
            BlockFootprint("x", slices=10, registered_fraction=0.7, carry_fraction=0.4)


class TestBlockNetlist:
    def test_exact_slice_count(self):
        fp = BlockFootprint("blk", slices=120, brams=2, multipliers=1)
        nl = block_netlist(fp)
        s = nl.stats()
        assert s.slices == 120
        assert s.brams == 2
        assert s.multipliers == 1

    def test_interface_nets_named(self):
        fp = BlockFootprint("blk", slices=40)
        nl = block_netlist(fp, interface_nets=6)
        io_nets = [n for n in nl.nets if n.name.startswith("blk_io")]
        assert len(io_nets) == 6

    def test_clock_reaches_all_sequential(self):
        fp = BlockFootprint("blk", slices=80, registered_fraction=0.6)
        nl = block_netlist(fp)
        clock = nl.net("blk/clk")
        seq = {c.name for c in nl.cells if c.ctype.is_sequential}
        covered = {c.name for c in clock.cells}
        assert seq <= covered

    def test_deterministic(self):
        fp = BlockFootprint("blk", slices=60)
        a = block_netlist(fp, seed=4)
        b = block_netlist(fp, seed=4)
        assert [n.name for n in a.nets] == [n.name for n in b.nets]
        assert [n.activity for n in a.nets] == [n.activity for n in b.nets]

    def test_validates(self):
        fp = BlockFootprint("blk", slices=100, brams=1)
        block_netlist(fp).validate()

    def test_activity_scales_with_footprint(self):
        quiet = block_netlist(BlockFootprint("q", slices=100, mean_activity=0.02), seed=1)
        busy = block_netlist(BlockFootprint("b", slices=100, mean_activity=0.4), seed=1)
        mean = lambda nl: sum(n.activity for n in nl.nets if not n.is_clock) / len(nl.nets)
        assert mean(busy) > 3 * mean(quiet)
