"""Tests for pinned placement, the slot implementation flow, and design
checkpointing."""

import pytest

from repro.fabric.device import get_device
from repro.fabric.grid import SliceCoord
from repro.netlist.blocks import BlockFootprint, block_netlist
from repro.netlist.generate import random_netlist
from repro.par.checkpoint import design_from_dict, design_to_dict, load_design, save_design
from repro.par.design import Design
from repro.par.placer import PlacerOptions, place
from repro.par.router import route
from repro.par.slot_impl import ANCHOR_PREFIX, attach_busmacro_anchors, implement_module_in_slot
from repro.power.estimator import PowerEstimator
from repro.reconfig.slots import plan_floorplan


@pytest.fixture
def dev():
    return get_device("XC3S400")


class TestFixedPlacement:
    def test_pinned_cells_stay(self, dev):
        nl = random_netlist("p", 40, seed=2)
        pins = {
            "c0": SliceCoord(0, 0, 0),
            "c1": SliceCoord(5, 5, 2),
        }
        placement = place(nl, dev, options=PlacerOptions(steps=20), fixed=pins)
        for name, coord in pins.items():
            assert placement.coord(name) == coord

    def test_unknown_fixed_cell_rejected(self, dev):
        nl = random_netlist("p", 10, seed=1)
        with pytest.raises(ValueError, match="not in netlist"):
            place(nl, dev, fixed={"ghost": SliceCoord(0, 0, 0)})

    def test_movable_cells_avoid_pinned_sites(self, dev):
        nl = random_netlist("p", 30, seed=3)
        pin = SliceCoord(2, 2, 1)
        placement = place(nl, dev, options=PlacerOptions(steps=10), fixed={"c5": pin})
        others = [placement.coord(c.name) for c in nl.cells if c.name != "c5"]
        assert pin not in others


class TestSlotImplementation:
    @pytest.fixture
    def floorplan(self, dev):
        from repro.app.system import static_side_slices

        return plan_floorplan(dev, static_side_slices(), [600], [24])

    @pytest.fixture
    def module(self):
        return block_netlist(
            BlockFootprint("mod", slices=120, mean_activity=0.1), seed=8, interface_nets=10
        )

    def test_anchors_attached(self, floorplan, module):
        anchored, pins = attach_busmacro_anchors(module, floorplan.slots[0])
        assert len(pins) == 10
        assert all(name.startswith(ANCHOR_PREFIX) for name in pins)
        # Anchor positions sit on the slot boundary column.
        boundary = floorplan.slots[0].region.x_min
        assert all(coord.x == boundary for coord in pins.values())
        # Interface nets gained the anchor as a sink.
        net = anchored.net("mod_io0")
        assert any(s.name.startswith(ANCHOR_PREFIX) for s in net.sinks)

    def test_too_many_signals_rejected(self, dev, module):
        from repro.app.system import static_side_slices

        tiny = plan_floorplan(dev, static_side_slices(), [600], [8])  # 1 macro = 8 signals
        with pytest.raises(ValueError, match="exceed"):
            attach_busmacro_anchors(module, tiny.slots[0])

    def test_full_slot_flow(self, floorplan, module):
        impl = implement_module_in_slot(
            module, floorplan, placer_options=PlacerOptions(steps=12)
        )
        assert impl.routing_legal
        assert impl.anchor_count == 10
        # Everything placed inside the slot region.
        slot_region = floorplan.slots[0].region
        for cell in impl.design.netlist.cells:
            assert slot_region.contains(impl.design.placement.coord(cell.name))
        assert impl.interface_wirelength > 0

    def test_flow_around_occupied_static_side(self, floorplan, module, dev):
        # First implement the static side on the left...
        static = random_netlist("static", 80, seed=4)
        static_placement = place(
            static, dev, region=floorplan.static_region, options=PlacerOptions(steps=10)
        )
        static_routing = route(static, static_placement, dev)
        # ...then the module negotiates the remaining resources.
        impl = implement_module_in_slot(
            module,
            floorplan,
            placer_options=PlacerOptions(steps=12),
            occupied_graph=static_routing.graph,
        )
        assert impl.routing_legal


class TestCheckpoint:
    @pytest.fixture
    def design(self, dev):
        nl = random_netlist("ckpt", 50, seed=6)
        placement = place(nl, dev, options=PlacerOptions(steps=10))
        routing = route(nl, placement, dev)
        return Design(nl, dev, placement=placement, routed_nets=routing.nets, graph=routing.graph)

    def test_roundtrip_structure(self, design):
        restored = design_from_dict(design_to_dict(design))
        assert restored.device.name == design.device.name
        assert len(restored.netlist.cells) == len(design.netlist.cells)
        assert restored.placement.as_dict() == design.placement.as_dict()
        assert set(restored.routed_nets) == set(design.routed_nets)
        for name in design.routed_nets:
            assert restored.routed_nets[name].segments == design.routed_nets[name].segments

    def test_roundtrip_power_identical(self, design):
        restored = design_from_dict(design_to_dict(design))
        a = PowerEstimator(design, 50.0).report()
        b = PowerEstimator(restored, 50.0).report()
        assert b.total_w == pytest.approx(a.total_w, rel=1e-12)
        assert b.routing_w == pytest.approx(a.routing_w, rel=1e-12)

    def test_roundtrip_graph_occupancy(self, design):
        restored = design_from_dict(design_to_dict(design))
        assert restored.graph.is_legal() == design.graph.is_legal()

    def test_file_roundtrip(self, design, tmp_path):
        path = save_design(design, tmp_path / "mod.json")
        restored = load_design(path)
        assert restored.netlist.name == design.netlist.name
        assert restored.is_routed

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError, match="not a design checkpoint"):
            design_from_dict({"format": "something-else"})
        with pytest.raises(ValueError, match="version"):
            design_from_dict({"format": "repro-design-checkpoint", "version": 99})

    def test_activities_preserved(self, design):
        restored = design_from_dict(design_to_dict(design))
        for net in design.netlist.nets:
            assert restored.netlist.net(net.name).activity == pytest.approx(net.activity)
