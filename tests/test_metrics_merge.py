"""Cross-process metric aggregation: histogram and snapshot merging.

The shard router sums counters and merges percentile reservoirs across
worker processes; these tests pin the merge algebra — exact count /
total / min / max, exact percentiles while the combined reservoirs fit,
count-weighted resampling beyond that — and the edge cases (empty
sources, single observations, summary-only fallbacks) that a fleet with
an idle shard hits on its very first snapshot.
"""

import pytest

from repro.serve.metrics import Histogram, Metrics


def _hist_with(values, reservoir=2048, seed=0):
    hist = Histogram(reservoir=reservoir, seed=seed)
    for value in values:
        hist.observe(value)
    return hist


# ------------------------------------------------------------ Histogram.merge


def test_merge_of_no_states_is_the_empty_histogram():
    merged = Histogram.merge([])
    assert merged.summary() == {
        "count": 0,
        "mean": 0.0,
        "min": None,
        "max": None,
        "p50": None,
        "p95": None,
    }


def test_merge_skips_empty_states():
    empty = Histogram().state()
    full = _hist_with([1.0, 3.0]).state()
    merged = Histogram.merge([empty, full, empty])
    assert merged.count == 2
    assert merged.min == 1.0 and merged.max == 3.0
    assert merged.percentile(50.0) == pytest.approx(2.0)


def test_merge_single_observation_states():
    """One observation per shard — the smallest non-trivial merge."""
    states = [_hist_with([float(v)]).state() for v in (5, 1, 3)]
    merged = Histogram.merge(states)
    assert merged.count == 3
    assert merged.total == pytest.approx(9.0)
    assert (merged.min, merged.max) == (1.0, 5.0)
    assert merged.percentile(50.0) == pytest.approx(3.0)


def test_merge_is_exact_while_reservoirs_fit():
    """Concatenation path: merged percentiles equal the percentiles of
    one histogram that observed the union stream."""
    a = list(range(0, 50))
    b = list(range(50, 120))
    merged = Histogram.merge(
        [_hist_with(map(float, a)).state(), _hist_with(map(float, b)).state()]
    )
    union = _hist_with(map(float, a + b))
    for p in (0.0, 25.0, 50.0, 95.0, 100.0):
        assert merged.percentile(p) == pytest.approx(union.percentile(p))


def test_merge_resamples_by_observation_count_when_over_capacity():
    """Resample path: a shard that observed 9x the traffic dominates the
    merged reservoir roughly 9:1 — weighting by reservoir length instead
    would split it 1:1 and skew every quantile."""
    hot = _hist_with([1.0] * 900, reservoir=64)
    cold = _hist_with([100.0] * 100, reservoir=64)
    merged = Histogram.merge([hot.state(), cold.state()], reservoir=64, seed=3)
    assert merged.count == 1000
    assert merged.total == pytest.approx(900 * 1.0 + 100 * 100.0)
    hot_share = sum(1 for v in merged._samples if v == 1.0) / len(merged._samples)
    assert 0.75 < hot_share < 0.99
    # Exact stats stay exact regardless of sampling.
    assert (merged.min, merged.max) == (1.0, 100.0)


def test_merge_is_deterministic_for_a_seed():
    states = [
        _hist_with([float(i) for i in range(200)], reservoir=32).state(),
        _hist_with([float(i) for i in range(500)], reservoir=32).state(),
    ]
    first = Histogram.merge(states, reservoir=32, seed=9)
    second = Histogram.merge(states, reservoir=32, seed=9)
    assert first._samples == second._samples


def test_from_state_roundtrip_and_validation():
    hist = _hist_with([2.0, 4.0, 6.0])
    rebuilt = Histogram.from_state(hist.state())
    assert rebuilt.summary() == hist.summary()
    with pytest.raises(ValueError):
        Histogram.from_state({"count": 1, "reservoir": 2, "samples": [1.0, 2.0, 3.0]})
    with pytest.raises(ValueError):
        Histogram.from_state({"count": 1, "reservoir": 8, "samples": [1.0, 2.0]})


# ------------------------------------------------------ Metrics.merge_snapshots


def test_merge_snapshots_sums_counters_and_gauges():
    a, b = Metrics(), Metrics()
    a.inc("served", 3)
    a.add("energy_j", 1.5)
    b.inc("served", 4)
    b.inc("only_b")
    b.add("energy_j", 0.5)
    merged = Metrics.merge_snapshots([a.snapshot(), b.snapshot()])
    assert merged["counters"] == {"only_b": 1, "served": 7}
    assert merged["gauges"]["energy_j"] == pytest.approx(2.0)


def test_merge_snapshots_of_nothing_is_empty():
    merged = Metrics.merge_snapshots([])
    assert merged == {"counters": {}, "gauges": {}, "histograms": {}}


def test_merge_snapshots_merges_reservoirs_when_states_present():
    a, b = Metrics(), Metrics()
    for v in (1.0, 2.0):
        a.observe("latency_s", v)
    for v in (3.0, 4.0):
        b.observe("latency_s", v)
    merged = Metrics.merge_snapshots(
        [a.snapshot(include_reservoirs=True), b.snapshot(include_reservoirs=True)]
    )
    summary = merged["histograms"]["latency_s"]
    assert summary["count"] == 4
    assert summary["p50"] == pytest.approx(2.5)
    # The merged snapshot stays mergeable (states ride along).
    assert merged["histogram_states"]["latency_s"]["count"] == 4


def test_merge_snapshots_summary_fallback_without_states():
    """A source without reservoirs degrades honestly: exact count / mean
    / min / max, percentiles None rather than invented."""
    a, b = Metrics(), Metrics()
    a.observe("latency_s", 1.0)
    b.observe("latency_s", 3.0)
    merged = Metrics.merge_snapshots(
        [a.snapshot(include_reservoirs=True), b.snapshot()]
    )
    summary = merged["histograms"]["latency_s"]
    assert summary["count"] == 2
    assert summary["mean"] == pytest.approx(2.0)
    assert (summary["min"], summary["max"]) == (1.0, 3.0)
    assert summary["p50"] is None and summary["p95"] is None
    assert "histogram_states" not in merged


def test_merge_snapshots_flags_degraded_histograms():
    """Regression: the summary fallback used to hide that per-shard
    percentile data was dropped — the merged snapshot must carry a
    ``merge_degraded`` list naming every histogram whose percentiles
    could not be recovered."""
    a, b = Metrics(), Metrics()
    a.observe("latency_s", 1.0)
    a.observe("batch_size", 4.0)
    b.observe("latency_s", 3.0)
    b.observe("batch_size", 8.0)
    merged = Metrics.merge_snapshots(
        [a.snapshot(include_reservoirs=True), b.snapshot()]
    )
    assert merged["merge_degraded"] == ["batch_size", "latency_s"]


def test_merge_snapshots_lossless_merge_has_no_degraded_flag():
    """A merge with full reservoirs everywhere recovers percentiles,
    so the flag must be absent — its presence IS the signal."""
    a, b = Metrics(), Metrics()
    a.observe("latency_s", 1.0)
    b.observe("latency_s", 3.0)
    merged = Metrics.merge_snapshots(
        [a.snapshot(include_reservoirs=True), b.snapshot(include_reservoirs=True)]
    )
    assert "merge_degraded" not in merged
    assert merged["histograms"]["latency_s"]["p50"] is not None


def test_merge_snapshots_empty_histograms_do_not_degrade():
    """A name whose every source is empty merges to the empty summary
    without raising the degraded flag (nothing was lost)."""
    a, b = Metrics(), Metrics()
    a.observe_nothing = None  # no observations at all
    snap_a, snap_b = a.snapshot(), b.snapshot()
    snap_a["histograms"]["latency_s"] = {
        "count": 0, "mean": 0.0, "min": 0.0, "max": 0.0, "p50": None, "p95": None,
    }
    merged = Metrics.merge_snapshots([snap_a, snap_b])
    assert "merge_degraded" not in merged
    assert merged["histograms"]["latency_s"]["count"] == 0


def test_merge_snapshots_with_idle_shard():
    """An idle shard (no observations yet) must not erase the busy one's
    percentiles — the first fleet-wide snapshot after startup does this."""
    busy, idle = Metrics(), Metrics()
    busy.observe("latency_s", 2.0)
    merged = Metrics.merge_snapshots(
        [busy.snapshot(include_reservoirs=True), idle.snapshot(include_reservoirs=True)]
    )
    summary = merged["histograms"]["latency_s"]
    assert summary["count"] == 1
    assert summary["p50"] == pytest.approx(2.0)
    assert summary["p95"] == pytest.approx(2.0)
