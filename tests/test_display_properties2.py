"""Tests for the level display driver plus a second round of
property-based tests (logic gates, adders, relocation, assembler)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.app.display import BAR_FULL, COLUMNS, LevelDisplay
from repro.fabric.bitstream import BitstreamGenerator
from repro.fabric.device import get_device
from repro.fabric.grid import Grid
from repro.netlist.logic import FunctionalNetlist, build_adder
from repro.reconfig.relocation import relocate
from repro.sim.netlist_sim import NetlistSimulator
from repro.softcore.asm import assemble


class TestLevelDisplay:
    def test_show_renders_both_lines(self):
        display = LevelDisplay()
        display.show(0.5)
        assert display.line(0).startswith("LEVEL:")
        assert "50.0 %" in display.line(0)
        assert display.line(1) == "#" * 8 + "-" * 8

    def test_bar_extremes(self):
        display = LevelDisplay()
        display.show(0.0)
        assert display.line(1) == "-" * COLUMNS
        display.show(1.0)
        assert display.line(1) == "#" * COLUMNS

    def test_clear(self):
        display = LevelDisplay()
        display.show(0.7)
        display.clear()
        assert display.line(0) == " " * COLUMNS
        assert display.line(1) == " " * COLUMNS

    def test_uart_timing(self):
        display = LevelDisplay()
        end = display.show(0.4)
        assert end == pytest.approx(display.update_time_s())
        # Updates queue behind each other on the wire.
        end2 = display.show(0.5, start_time_s=0.0)
        assert end2 == pytest.approx(2 * display.update_time_s())

    def test_level_validation(self):
        with pytest.raises(ValueError):
            LevelDisplay().show(1.4)

    def test_fits_in_cycle_tail(self):
        """One display update fits comfortably in the ~1.4 ms reporting
        window of the measurement cycle."""
        display = LevelDisplay()
        assert display.update_time_s() < 0.01


class TestGateProperties:
    @given(st.integers(min_value=1, max_value=4), st.data())
    @settings(max_examples=30, deadline=None)
    def test_and_or_xor_tables(self, n_inputs, data):
        fn = FunctionalNetlist("g")
        nets = [fn.input(f"i{k}") for k in range(n_inputs)]
        gates = {
            "and": fn.and_gate("and_y", nets),
            "or": fn.or_gate("or_y", nets),
            "xor": fn.xor_gate("xor_y", nets),
        }
        pattern = data.draw(st.integers(0, (1 << n_inputs) - 1))
        values = {f"i{k}": (pattern >> k) & 1 for k in range(n_inputs)}
        bits = list(values.values())
        assert gates["and"].evaluate(values) == int(all(bits))
        assert gates["or"].evaluate(values) == int(any(bits))
        assert gates["xor"].evaluate(values) == sum(bits) % 2

    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=0),
        st.integers(min_value=0),
    )
    @settings(max_examples=25, deadline=None)
    def test_adder_correct_for_any_operands(self, width, a, b):
        a %= 1 << width
        b %= 1 << width
        fn = FunctionalNetlist("add")
        a_nets = [fn.input(f"a{i}") for i in range(width)]
        b_nets = [fn.input(f"b{i}") for i in range(width)]
        sums, cout = build_adder(fn, "u", a_nets, b_nets)
        sim = NetlistSimulator(fn)
        for i in range(width):
            sim.drive(f"a{i}", lambda _c, v=a, k=i: (v >> k) & 1)
            sim.drive(f"b{i}", lambda _c, v=b, k=i: (v >> k) & 1)
        sim.step()
        assert sim.value_of(sums) | (sim.values[cout] << width) == a + b


class TestRelocationProperty:
    @given(st.integers(min_value=0, max_value=20), st.integers(min_value=0, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_relocation_preserves_payload(self, src_col, dst_col):
        dev = get_device("XC3S1000")
        grid = Grid(dev)
        width = 3
        src_col = min(src_col, dev.clb_columns - width)
        dst_col = min(dst_col, dev.clb_columns - width)
        source = grid.column_region(src_col, src_col + width - 1)
        target = grid.column_region(dst_col, dst_col + width - 1)
        bs = BitstreamGenerator(dev).partial_for_region(source, "m")
        moved = relocate(bs, source, target, dev)
        assert [f.words for f in moved.frames] == [f.words for f in bs.frames]
        assert all(
            (f.address >> 8) - (g.address >> 8) == dst_col - src_col
            for f, g in zip(moved.frames, bs.frames)
        )


class TestAssemblerProperty:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["add", "sub", "and", "or", "xor"]),
                st.integers(1, 31),
                st.integers(0, 31),
                st.integers(0, 31),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_r_format_roundtrip(self, instructions):
        source = "\n".join(f"{op} r{rd}, r{ra}, r{rb}" for op, rd, ra, rb in instructions)
        program = assemble(source + "\nhalt")
        assert len(program.instructions) == len(instructions) + 1
        for (op, rd, ra, rb), inst in zip(instructions, program.instructions):
            assert (inst.op, inst.rd, inst.ra, inst.rb) == (op, rd, ra, rb)
