"""Tests for the hardware modules and the assembled system variants."""

import numpy as np
import pytest

from repro.app.dsp import process_measurement
from repro.app.frontend import AnalogFrontEnd
from repro.app.modules import (
    FRAME_SAMPLES,
    build_amp_phase_graph,
    build_capacity_graph,
    build_filter_graph,
    build_frontend_graph,
    build_processing_graph,
    repartitioned_modules,
    standard_modules,
)
from repro.app.system import (
    FpgaFullHardwareSystem,
    FpgaReconfigSystem,
    FpgaSoftwareSystem,
    MicrocontrollerSystem,
    frontend_slices,
    static_side_slices,
)
from repro.reconfig.ports import Icap
from repro.sysgen.compile import compile_graph


@pytest.fixture(scope="module")
def modules():
    return standard_modules()


class TestModuleFootprints:
    def test_amp_phase_is_largest(self, modules):
        """Paper: 'the module for calculating the amplitude and phase of a
        signal ... is the largest one.'"""
        ap = modules["amp_phase"].slices
        assert ap > modules["capacity"].slices
        assert ap > modules["filter"].slices
        assert ap > modules["frontend"].slices

    def test_total_exceeds_6000_without_reconfig(self, modules):
        """Paper: 'Implementing the complete system without exploiting
        reconfiguration would require more than 6000 slices.'"""
        from repro.ip.ethernet import ETHERNET_FOOTPRINT
        from repro.ip.profibus import PROFIBUS_FOOTPRINT

        flat = (
            static_side_slices(with_jcap=False)
            + sum(m.slices for m in modules.values())
            + ETHERNET_FOOTPRINT.slices
            + PROFIBUS_FOOTPRINT.slices
        )
        assert flat > 6000

    def test_modules_fit_xc3s400_slot(self, modules):
        """Static side + largest module fit the XC3S400 (the paper's
        one-slot system)."""
        from repro.fabric.device import get_device

        dev = get_device("XC3S400")
        assert static_side_slices() + modules["amp_phase"].slices <= dev.slices

    def test_graph_compilation_deterministic(self):
        a = compile_graph(build_amp_phase_graph())
        b = compile_graph(build_amp_phase_graph())
        assert a.slices == b.slices

    def test_all_modules_meet_75mhz(self, modules):
        for m in modules.values():
            assert m.compiled.fmax_mhz >= 75.0

    def test_amp_phase_processing_near_7us(self, modules):
        """Paper headline: 7 us of hardware processing time."""
        t = modules["amp_phase"].compiled.processing_time_us(FRAME_SAMPLES, 75.0)
        assert 4.0 < t < 12.0

    def test_repartition_into_five(self):
        """Paper: 're-partitioning the modules into e.g. 5 reconfigurable
        modules of smaller sizes' lets the system use a smaller device."""
        parts = repartitioned_modules(5)
        combined = compile_graph(build_processing_graph())
        assert len(parts) == 5
        assert sum(p.slices for p in parts) == combined.slices
        assert max(p.slices for p in parts) < combined.slices / 2

    def test_frontend_module_small(self, modules):
        assert modules["frontend"].slices < 400


class TestModuleBehaviours:
    def test_hw_pipeline_matches_reference(self, modules):
        fe = AnalogFrontEnd(seed=7)
        cyc = fe.sample_cycle(0.45, FRAME_SAMPLES)
        ref = process_measurement(cyc.meas, cyc.ref, cyc.sample_rate_hz, cyc.tone_hz, fe.circuit)
        m_amp, m_ph, r_amp, r_ph = modules["amp_phase"].behavior(
            cyc.meas, cyc.ref, cyc.sample_rate_hz, cyc.tone_hz
        )
        assert m_amp == pytest.approx(ref.meas_amplitude, abs=2e-5)
        c = modules["capacity"].behavior(m_amp, m_ph, r_amp, r_ph)
        assert c == pytest.approx(ref.capacitance_pf, rel=1e-2)
        level, _state = modules["filter"].behavior(c, None)
        assert level == pytest.approx(ref.level, abs=1e-2)

    def test_filter_behavior_state(self, modules):
        behavior = modules["filter"].behavior
        level1, state = behavior(300.0, None)
        level2, _ = behavior(300.0, state)
        assert level2 == pytest.approx(level1, abs=1e-6)


class TestSystems:
    def test_all_variants_measure_same_level(self):
        level = 0.55
        results = {}
        for cls in (MicrocontrollerSystem, FpgaSoftwareSystem, FpgaFullHardwareSystem):
            system = cls()
            results[cls.__name__] = system.run_cycle(level).level_measured
        values = list(results.values())
        assert max(values) - min(values) < 0.02
        assert all(abs(v - level) < 0.06 for v in values)

    def test_software_needs_external_sram(self):
        assert FpgaSoftwareSystem().needs_external_sram

    def test_full_hw_needs_xc3s1000(self):
        system = FpgaFullHardwareSystem()
        assert system.device.name == "XC3S1000"

    def test_reconfig_fits_xc3s400(self):
        system = FpgaReconfigSystem()
        assert system.device.name == "XC3S400"

    def test_speedup_about_1000x(self):
        """Paper: 'the processing performance increased with approximately
        a factor 1000, from 7 ms ... to 7 us.'"""
        sw = FpgaSoftwareSystem().run_cycle(0.5)
        hw = FpgaFullHardwareSystem().run_cycle(0.5)
        speedup = sw.processing_time_s / hw.processing_time_s
        assert 300 < speedup < 3000

    def test_reconfig_static_power_lower_than_flat(self):
        from repro.power.model import static_power_w

        flat = FpgaFullHardwareSystem()
        reconf = FpgaReconfigSystem()
        assert static_power_w(reconf.device) < static_power_w(flat.device)

    def test_jcap_overruns_100ms_cycle(self):
        """The paper's caveat: the JCAP rate is the bottleneck."""
        result = FpgaReconfigSystem().run_cycle(0.5)
        assert not result.fits_period
        assert result.reconfig_time_s > 0.05

    def test_icap_fits_100ms_cycle(self):
        result = FpgaReconfigSystem(port=Icap()).run_cycle(0.5)
        assert result.fits_period

    def test_reduced_clock_reduces_power(self):
        fast = FpgaReconfigSystem(port=Icap())
        slow = FpgaReconfigSystem(port=Icap(), hw_clock_mhz=25.0)
        pf = fast.run_cycle(0.5).avg_power_w
        ps = slow.run_cycle(0.5).avg_power_w
        assert ps < pf

    def test_overclock_rejected(self):
        with pytest.raises(ValueError, match="fmax"):
            FpgaReconfigSystem(hw_clock_mhz=200.0)

    def test_reset_clears_filter(self):
        system = MicrocontrollerSystem()
        system.run_cycle(0.2)
        system.reset()
        r = system.run_cycle(0.8)
        assert r.level_measured == pytest.approx(0.8, abs=0.05)

    def test_schedule_accounting(self):
        r = FpgaReconfigSystem(port=Icap()).run_cycle(0.5)
        s = r.schedule
        assert s.reconfig_time_s == pytest.approx(r.reconfig_time_s, rel=1e-9)
        assert s.busy_time_s <= s.period_s
        assert "load" in s.timeline()
