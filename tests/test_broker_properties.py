"""Property-based tests of the request broker's admission behaviour.

Randomized (seeded, shrinking) checks of the front-door contracts:
retry backoff monotonicity, bounded-queue backpressure,
``wait_for_depth`` never waking early, and ``take``'s timing contract
(a timed take never blocks — or spins — past its deadline) — the
invariants the batching window and the retry loop silently rely on.
"""

import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.serve import MeasurementRequest, RequestBroker, RetryPolicy
from repro.serve.requests import BrokerFullError


def _request(request_id, **kwargs):
    return MeasurementRequest(request_id=request_id, tank_id="t", level=0.5, **kwargs)


class StepClock:
    """A fake monotonic clock advancing a tiny epsilon per read.

    The auto-step stands in for the passage of real time: code that
    *polls* the clock in a tight loop (the pre-fix busy-spin) sees time
    race forward and terminates the test quickly, while code honouring
    its deadline returns after a bounded number of reads.
    """

    def __init__(self, start=100.0, step=1e-4):
        self.now = start
        self.step = step
        self.reads = 0

    def __call__(self):
        self.reads += 1
        value = self.now
        self.now += self.step
        return value

    def advance(self, dt):
        self.now += dt


# ---------------------------------------------------------- retry monotonicity


@settings(max_examples=100, deadline=None)
@given(
    base=st.floats(min_value=1e-4, max_value=0.1),
    factor=st.floats(min_value=1.0, max_value=4.0),
    cap=st.floats(min_value=1e-3, max_value=1.0),
    attempts=st.integers(min_value=2, max_value=12),
)
def test_retry_backoff_is_monotone_and_capped(base, factor, cap, attempts):
    policy = RetryPolicy(base_delay_s=base, factor=factor, max_delay_s=cap)
    delays = [policy.delay_s(a) for a in range(1, attempts + 1)]
    assert delays[0] == pytest.approx(min(cap, base))
    for earlier, later in zip(delays, delays[1:]):
        assert later >= earlier - 1e-12  # never backs off *less* on a later try
    assert all(d <= cap + 1e-12 for d in delays)


@settings(max_examples=50, deadline=None)
@given(
    attempts=st.lists(st.integers(min_value=1, max_value=10), min_size=2, max_size=8),
    base=st.floats(min_value=1e-4, max_value=0.05),
)
def test_requeue_not_before_is_monotone_in_attempts(attempts, base):
    """On a frozen clock, a request on attempt k+1 is never released
    before a request on attempt k (retry-after monotonicity end-to-end,
    through the broker rather than just the policy)."""
    now = 100.0
    broker = RequestBroker(
        capacity=len(attempts),
        retry=RetryPolicy(base_delay_s=base, factor=2.0, max_delay_s=0.25),
        clock=lambda: now,
    )
    releases = {}
    for i, attempt in enumerate(attempts):
        request = _request(i)
        request.attempts = attempt
        broker.requeue(request)
        releases[attempt] = request.not_before_s
        assert request.not_before_s > now
    ordered = sorted(releases.items())
    for (_, earlier), (_, later) in zip(ordered, ordered[1:]):
        assert later >= earlier - 1e-12
    assert broker.requeued == len(attempts)


# --------------------------------------------------------------- backpressure


@settings(max_examples=50, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=16),
    submits=st.integers(min_value=1, max_value=40),
)
def test_backpressure_bounds_depth_and_hints_retry(capacity, submits):
    broker = RequestBroker(capacity=capacity)
    accepted = 0
    for i in range(submits):
        try:
            broker.submit(_request(i))
            accepted += 1
        except BrokerFullError as err:
            assert err.retry_after_s > 0
            assert err.capacity == capacity
        assert broker.depth <= capacity  # the bound is never breached
    assert accepted == min(submits, capacity)
    assert broker.submitted == accepted
    assert broker.rejected == max(0, submits - capacity)


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=48),
    takes=st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=12),
)
def test_fifo_drain_preserves_order_without_loss(n, takes):
    """Random take sizes drain the queue in exact submission order —
    no request lost, duplicated, or reordered."""
    broker = RequestBroker(capacity=n)
    for i in range(n):
        broker.submit(_request(i))
    drained = []
    step = 0
    while len(drained) < n:
        batch = broker.take(takes[step % len(takes)], timeout_s=0.05)
        assert batch, "queue emptied before every request was seen"
        drained.extend(r.request_id for r in batch)
        step += 1
    assert drained == list(range(n))
    assert broker.depth == 0
    assert broker.take(1, timeout_s=0.0) == []


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_random_submit_take_interleaving_invariants(seed):
    """A seeded random schedule of submits and takes: depth always equals
    submitted - taken, FIFO order holds across interleavings."""
    import random

    rng = random.Random(seed)
    broker = RequestBroker(capacity=64)
    next_id = 0
    taken = []
    for _ in range(rng.randint(5, 40)):
        if rng.random() < 0.6 and next_id < 64:
            broker.submit(_request(next_id))
            next_id += 1
        else:
            taken.extend(
                r.request_id for r in broker.take(rng.randint(1, 4), timeout_s=0.0)
            )
        assert broker.depth == next_id - len(taken)
    assert taken == list(range(len(taken)))  # FIFO prefix, no holes


def test_retried_request_jumps_the_fifo_on_release():
    """A backoff release re-enters at the head: the fault already cost
    the request one pass through the queue."""
    broker = RequestBroker(
        capacity=4, retry=RetryPolicy(base_delay_s=0.005, max_delay_s=0.01)
    )
    broker.submit(_request(1))
    broker.submit(_request(2))
    (head,) = broker.take(1, timeout_s=0.1)
    assert head.request_id == 1
    head.attempts = 1
    delay = broker.requeue(head)
    time.sleep(delay + 0.01)  # let the backoff release before taking
    batch = broker.take(2, timeout_s=1.0)
    assert [r.request_id for r in batch] == [1, 2]


# ------------------------------------------------------- take timing contract


def test_take_timeout_returns_empty_despite_delayed_backlog():
    """Regression for the backoff busy-spin: queue empty, one request
    sitting out a backoff released far beyond the deadline.  A timed
    ``take`` must return ``[]`` once its deadline passes — the pre-fix
    loop treated ``wait <= 0`` as "retry immediately" and spun at 100%
    CPU until the backoff released, then returned the request (violating
    the timeout twice over: blocking past it *and* not returning empty)."""
    clock = StepClock(step=1e-4)
    broker = RequestBroker(
        capacity=4,
        retry=RetryPolicy(base_delay_s=5.0, factor=1.0, max_delay_s=5.0),
        clock=clock,
    )
    broker.submit(_request(1))
    (taken,) = broker.take(1, timeout_s=0.0)
    taken.attempts = 1
    broker.requeue(taken)  # released ~5 fake seconds from now

    reads_before = clock.reads
    assert broker.take(1, timeout_s=0.0) == []
    # The deadline check must terminate the call after a handful of clock
    # reads; the pre-fix spin polled the clock ~50k times (5 s / 1e-4)
    # before the backoff released.
    assert clock.reads - reads_before < 20
    # An expired deadline must not have consumed the delayed request.
    clock.advance(10.0)
    assert [r.request_id for r in broker.take(1, timeout_s=0.0)] == [1]


def test_take_drain_semantics_still_serve_delayed_requests():
    """``timeout_s=None`` keeps drain semantics: the call sleeps until
    the earliest backoff release and returns the request instead of
    returning empty (a drain shutdown must serve delayed retries)."""
    broker = RequestBroker(
        capacity=4, retry=RetryPolicy(base_delay_s=0.01, factor=1.0, max_delay_s=0.01)
    )
    broker.submit(_request(7))
    (taken,) = broker.take(1, timeout_s=0.0)
    taken.attempts = 1
    broker.requeue(taken)
    t0 = time.monotonic()
    batch = broker.take(1, timeout_s=None)
    elapsed = time.monotonic() - t0
    assert [r.request_id for r in batch] == [7]
    assert elapsed < 5.0  # woke on the release, not an unbounded block


@settings(max_examples=20, deadline=None)
@given(
    timeout_s=st.floats(min_value=0.0, max_value=0.05),
    backoff_s=st.floats(min_value=0.5, max_value=5.0),
    delayed=st.integers(min_value=0, max_value=3),
)
def test_take_never_blocks_past_its_deadline(timeout_s, backoff_s, delayed):
    """Property: whatever mixture of empty queue and backoff-delayed
    requests the broker holds, a timed ``take`` returns within its
    timeout (plus scheduling slack) — and empty, since nothing can be
    released before the far-future backoff."""
    broker = RequestBroker(
        capacity=8,
        retry=RetryPolicy(base_delay_s=backoff_s, factor=1.0, max_delay_s=backoff_s),
    )
    for i in range(delayed):
        broker.submit(_request(i))
        (taken,) = broker.take(1, timeout_s=0.0)
        taken.attempts = 1
        broker.requeue(taken)
    t0 = time.monotonic()
    batch = broker.take(4, timeout_s=timeout_s)
    elapsed = time.monotonic() - t0
    assert batch == []
    assert elapsed <= timeout_s + 0.25  # generous scheduling slack


# -------------------------------------------------------------- wait_for_depth


@settings(max_examples=25, deadline=None)
@given(
    present=st.integers(min_value=0, max_value=6),
    want=st.integers(min_value=1, max_value=6),
)
def test_wait_for_depth_never_returns_early(present, want):
    """The contract: return only once depth >= n, the broker closed, or
    the deadline passed — and report the depth actually present."""
    broker = RequestBroker(capacity=16)
    for i in range(present):
        broker.submit(_request(i))
    window_s = 0.05
    t0 = time.monotonic()
    depth = broker.wait_for_depth(want, deadline_s=broker.clock() + window_s)
    elapsed = time.monotonic() - t0
    assert depth == present
    if present < want:
        # Neither satisfied nor closed: the full window must elapse.
        assert elapsed >= window_s * 0.8
    else:
        assert elapsed < window_s  # satisfied depth returns without waiting


def test_wait_for_depth_wakes_on_submit_and_close():
    broker = RequestBroker(capacity=8)

    def submit_later():
        time.sleep(0.02)
        broker.submit(_request(1))

    thread = threading.Thread(target=submit_later)
    thread.start()
    t0 = time.monotonic()
    depth = broker.wait_for_depth(1, deadline_s=broker.clock() + 5.0)
    elapsed = time.monotonic() - t0
    thread.join()
    assert depth >= 1
    assert elapsed < 4.0  # woke on the submit, not the faraway deadline

    def close_later():
        time.sleep(0.02)
        broker.close()

    thread = threading.Thread(target=close_later)
    thread.start()
    depth = broker.wait_for_depth(50, deadline_s=broker.clock() + 5.0)
    thread.join()
    assert broker.closed
    assert depth == 1  # the one queued request, reported at close


# ------------------------------------------------------- restore semantics


def test_restore_enters_at_the_head_in_batch_order():
    """A restored batch jumps the queue — it already waited once on the
    dead worker — and keeps its own internal order."""
    broker = RequestBroker(capacity=16)
    for i in range(4):
        broker.submit(_request(i))
    broker.restore([_request(100), _request(101), _request(102)])
    drained = [r.request_id for r in broker.take(7, timeout_s=0.1)]
    assert drained == [100, 101, 102, 0, 1, 2, 3]


def test_restore_bypasses_capacity_and_closed_queue():
    """Restore re-admits work the broker already accepted once, so
    neither the capacity bound nor a closed (draining) queue may refuse
    it — refusing would turn a worker death into request loss."""
    broker = RequestBroker(capacity=2)
    broker.submit(_request(0))
    broker.submit(_request(1))
    with pytest.raises(BrokerFullError):
        broker.submit(_request(2))
    broker.restore([_request(10), _request(11)])
    assert broker.depth == 4

    broker.close()
    broker.restore([_request(20)])
    drained = [r.request_id for r in broker.take(8, timeout_s=0.1)]
    assert drained == [20, 10, 11, 0, 1]


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_restore_interleaved_with_concurrent_submits(seed):
    """Property: restores racing live submits lose nothing, duplicate
    nothing, and never reorder *within* a restored batch or within the
    submitted stream (the cross-stream interleaving is scheduling)."""
    import random

    rng = random.Random(seed)
    broker = RequestBroker(capacity=1024)
    n_submits = rng.randint(10, 60)
    batches = [
        [1000 * (b + 1) + i for i in range(rng.randint(1, 5))]
        for b in range(rng.randint(1, 4))
    ]

    def submitter():
        for i in range(n_submits):
            broker.submit(_request(i))

    def restorer():
        for batch in batches:
            broker.restore([_request(i) for i in batch])

    threads = [threading.Thread(target=submitter), threading.Thread(target=restorer)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30.0)
        assert not t.is_alive()

    drained = []
    expected = n_submits + sum(len(b) for b in batches)
    while len(drained) < expected:
        batch = broker.take(rng.randint(1, 8), timeout_s=0.2)
        assert batch, "drain stalled before every request was seen"
        drained.extend(r.request_id for r in batch)

    assert sorted(drained) == sorted(
        list(range(n_submits)) + [i for b in batches for i in b]
    )
    submitted_order = [i for i in drained if i < 1000]
    assert submitted_order == list(range(n_submits))
    for batch in batches:
        batch_order = [i for i in drained if i in set(batch)]
        assert batch_order == batch
