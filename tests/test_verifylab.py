"""Tests of the correctness harness (repro.verifylab)."""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.verifylab import (
    FaultIntensity,
    ToleranceSpec,
    build_trace,
    campaign_scenario,
    check_golden,
    check_scenario,
    generate_fault_scenario,
    generate_scenario,
    retarget_single_tank,
    run_campaign,
    run_fault_oracle,
    run_fuzz,
    run_oracle,
    shrink,
    write_golden,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


# ----------------------------------------------------------------- scenarios


class TestScenarios:
    def test_generation_is_deterministic(self):
        assert generate_scenario(7) == generate_scenario(7)
        assert generate_scenario(7) != generate_scenario(8)

    def test_generated_requests_are_valid(self):
        scenario = generate_scenario(3)
        requests = scenario.requests()
        assert [r.request_id for r in requests] == list(range(scenario.n_requests))
        assert all(0.05 <= r.level <= 0.95 for r in requests)
        assert scenario.circuit.tank.c_full_pf > scenario.circuit.tank.c_empty_pf
        assert set(r.tank_id for r in requests) == set(scenario.tank_ids)

    def test_to_dict_is_json_ready(self):
        payload = json.dumps(generate_scenario(1).to_dict())
        assert "tank_levels" in payload and "circuit" in payload

    def test_retarget_single_tank(self):
        scenario = generate_scenario(11)
        assert len(scenario.tank_ids) > 1
        collapsed = retarget_single_tank(scenario)
        assert len(collapsed.tank_ids) == 1
        assert collapsed.n_requests == scenario.n_requests

    def test_empty_scenario_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(generate_scenario(0), tank_levels=())


# -------------------------------------------------------------------- oracle


class TestOracle:
    def test_sweep_has_zero_violations(self):
        report = run_oracle(range(3))
        assert report.ok and not report.violations
        deviations = report.max_deviation()
        # Same arithmetic in the same order: the module path agrees exactly.
        assert deviations["level"] == 0.0
        assert deviations["capacitance_pf"] == 0.0
        # The dsp ground truth differs only by declared quantization.
        assert 0.0 < deviations["dsp_level"] < ToleranceSpec().dsp_level_abs

    def test_report_shape(self):
        report = run_oracle(range(2))
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["seeds_checked"] == 2
        assert payload["requests_checked"] >= 2
        assert set(payload["max_deviation"]) == {"level", "capacitance_pf", "dsp_level"}
        assert len(payload["per_seed"]) == 2

    def test_vector_engine_sweep_has_zero_violations(self):
        """The vector engine must hold the oracle with *unchanged*
        tolerances — and, being bit-identical, with zero module-path
        deviation."""
        report = run_oracle(range(3), engine="vector")
        assert report.ok and not report.violations
        deviations = report.max_deviation()
        assert deviations["level"] == 0.0
        assert deviations["capacitance_pf"] == 0.0

    def test_zero_tolerance_reports_violation(self):
        # The dsp path legitimately deviates by the fixed-point grid; a
        # zero tolerance must surface that as a per-field violation.
        tolerances = ToleranceSpec(dsp_level_abs=0.0)
        check = check_scenario(generate_scenario(0), tolerances=tolerances)
        assert not check.ok
        assert any("dsp_level" in v for v in check.violations)
        assert all("capacitance_pf" not in v for v in check.violations)


# -------------------------------------------------------------- fault oracle


class TestFaultOracle:
    def test_fault_scenarios_are_deterministic_one_request_per_tank(self):
        scenario = generate_fault_scenario(4)
        assert scenario == generate_fault_scenario(4)
        tank_ids = [tank_id for tank_id, _level in scenario.tank_levels]
        assert len(tank_ids) == len(set(tank_ids))
        assert scenario.batched

    @pytest.mark.parametrize("engine", ["scalar", "vector"])
    def test_mixed_sweep_is_exact_at_each_engine(self, engine):
        """The tentpole claim: a batch mixing faulted and clean requests
        is served bit-exactly by *both* engines — faulted requests retried
        in-batch, not scrubbed out to a scalar side path."""
        report = run_fault_oracle(range(4), engine=engine)
        assert report.ok, report.violations
        # The sweep genuinely mixed outcomes, else it proved nothing.
        assert report.clean_ok > 0
        assert report.faulted_ok > 0
        deviations = report.max_deviation()
        assert deviations["level"] == 0.0
        assert deviations["capacitance_pf"] == 0.0
        assert 0.0 < deviations["dsp_level"] < ToleranceSpec().dsp_level_abs

    def test_engines_agree_per_seed(self):
        scalar = run_fault_oracle(range(3), engine="scalar")
        vector = run_fault_oracle(range(3), engine="vector")
        for s_check, v_check in zip(scalar.checks, vector.checks):
            assert s_check.to_dict() == v_check.to_dict()

    def test_sequential_injector_rejected_for_replay(self):
        from repro.serve.batching import FaultInjector
        from repro.verifylab.oracle import ReferenceExecutor

        with pytest.raises(ValueError, match="counter"):
            ReferenceExecutor(generate_fault_scenario(0)).run_with_faults(
                FaultInjector(0.3, seed=0)
            )

    def test_shared_tank_scenario_rejected_for_replay(self):
        from repro.serve.batching import FaultInjector
        from repro.verifylab.oracle import ReferenceExecutor

        scenario = retarget_single_tank(generate_scenario(11))
        with pytest.raises(ValueError, match="one request per tank"):
            ReferenceExecutor(scenario).run_with_faults(
                FaultInjector(0.3, seed=11, mode="counter")
            )

    def test_report_shape(self):
        report = run_fault_oracle(range(2))
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        assert payload["engine"] == "scalar"
        assert payload["seeds_checked"] == 2
        assert payload["clean_ok"] + payload["faulted_ok"] + payload[
            "failed"
        ] == payload["requests_checked"]


# ---------------------------------------------------------------------- fuzz


class TestFuzz:
    def test_clean_sweep(self):
        report = run_fuzz(range(2), max_requests=6)
        assert report.ok
        assert report.seeds_run == 2
        assert report.to_dict()["failures"] == []

    def test_vector_engine_clean_sweep(self):
        """Randomized scalar-vs-vector equivalence: the fuzzer's reference
        replay is the scalar path, so a vector sweep diffs the engines."""
        report = run_fuzz(range(2), max_requests=6, engine="vector")
        assert report.ok
        assert report.seeds_run == 2

    def test_shrink_finds_minimal_reproducer(self):
        scenario = generate_scenario(11)  # multi-tank, several requests
        assert scenario.n_requests >= 3

        # Synthetic failure: any scenario containing a request above the
        # highest-but-one level.  Minimal reproducer = exactly one request.
        threshold = sorted(level for _t, level in scenario.tank_levels)[-2]
        fails = lambda s: any(level > threshold for _t, level in s.tank_levels)

        assert fails(scenario)
        minimal = shrink(scenario, fails)
        assert fails(minimal)
        assert minimal.n_requests == 1
        assert minimal.max_batch == 1
        assert minimal.noise_rms == 0.0

    def test_shrink_requires_a_failing_start(self):
        with pytest.raises(ValueError):
            shrink(generate_scenario(0), lambda s: False)


# ------------------------------------------------------------------ campaign


class TestCampaign:
    def test_certain_single_fault_always_recovers(self):
        intensity = FaultIntensity("all", rate=1.0, burst=2, retry_rate=0.0)
        report = run_campaign(
            intensities=(intensity,), requests=5, seed=1, max_attempts=3
        )
        (result,) = report["intensities"]
        assert result["faulted"] == 5
        assert result["recovered"] == 5
        assert result["failed"] == 0
        assert result["recovery_rate"] == 1.0
        assert result["retries_consumed"] == 5
        assert result["faults_injected"] == 5
        assert result["seu_bits_flipped"] == 10
        integrity = result["integrity"]
        assert integrity["matching"] == integrity["checked"] == 5
        assert integrity["max_level_deviation"] <= ToleranceSpec().level_abs
        assert report["ok"]

    def test_persistent_faults_exhaust_attempts(self):
        intensity = FaultIntensity("storm", rate=1.0, burst=1, retry_rate=1.0)
        report = run_campaign(
            intensities=(intensity,), requests=4, seed=2, max_attempts=2
        )
        (result,) = report["intensities"]
        assert result["failed"] == 4
        assert result["recovery_rate"] == 0.0
        # Nothing was served, so integrity has nothing to check — still ok.
        assert result["integrity"]["checked"] == 0
        assert report["ok"]

    def test_campaign_workload_is_noise_free_and_tank_per_request(self):
        scenario = campaign_scenario(6, seed=0)
        assert scenario.noise_rms == 0.0
        assert len(scenario.tank_ids) == scenario.n_requests == 6

    def test_report_is_json_ready(self, tmp_path):
        from repro.verifylab import write_report

        report = run_campaign(
            intensities=(FaultIntensity("low", 0.5, 1, 0.0),), requests=3, seed=0
        )
        out = tmp_path / "campaign.json"
        write_report(report, str(out))
        assert json.loads(out.read_text())["ok"] is True


# -------------------------------------------------------------------- golden


class TestGolden:
    def test_committed_traces_match(self):
        """The regression gate: the committed snapshots must reproduce."""
        drift = check_golden(GOLDEN_DIR)
        assert drift == []

    def test_update_then_check_roundtrip(self, tmp_path):
        write_golden(tmp_path, seeds=(5,))
        assert check_golden(tmp_path, seeds=(5,)) == []

    def test_drift_is_loud(self, tmp_path):
        (path,) = write_golden(tmp_path, seeds=(5,))
        trace = json.loads(path.read_text())
        trace["responses"][0]["level_measured"] += 0.25
        path.write_text(json.dumps(trace))
        drift = check_golden(tmp_path, seeds=(5,))
        assert len(drift) == 1
        assert "level_measured" in drift[0] and "tolerance" in drift[0]

    def test_missing_trace_reported(self, tmp_path):
        drift = check_golden(tmp_path, seeds=(5,))
        assert len(drift) == 1 and "no golden trace" in drift[0]

    def test_trace_shape(self):
        trace = build_trace(5)
        assert trace["seed"] == 5
        assert trace["scenario"]["n_requests"] == len(trace["responses"])
        first = trace["responses"][0]
        assert first["status"] == "ok" and first["level_measured"] is not None


# ----------------------------------------------------------------------- CLI


class TestCli:
    def test_oracle_emits_json_and_passes(self, capsys):
        assert cli_main(["verifylab", "oracle", "--seeds", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["seeds_checked"] == 2

    def test_fuzz_emits_json_and_passes(self, capsys):
        assert cli_main(["verifylab", "fuzz", "--seeds", "1", "--max-requests", "4"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["seeds_run"] == 1

    def test_oracle_vector_engine_passes(self, capsys):
        rc = cli_main(["verifylab", "oracle", "--seeds", "2", "--engine", "vector"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["seeds_checked"] == 2

    @pytest.mark.parametrize("engine", ["scalar", "vector"])
    def test_fault_oracle_cli_passes(self, capsys, engine):
        rc = cli_main(
            ["verifylab", "oracle", "--seeds", "2", "--faults", "--engine", engine]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["engine"] == engine
        assert payload["faulted_ok"] > 0 and payload["clean_ok"] > 0

    def test_campaign_emits_json_and_writes_report(self, capsys, tmp_path):
        out = tmp_path / "report.json"
        rc = cli_main(
            ["verifylab", "campaign", "--requests", "4", "--seed", "1", "--out", str(out)]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and len(payload["intensities"]) == 3
        assert payload["intensities"][0]["recovery_rate"] >= 0.9
        assert json.loads(out.read_text()) == payload

    def test_golden_check_passes_on_committed_traces(self, capsys):
        assert cli_main(["verifylab", "golden", "--dir", str(GOLDEN_DIR)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["drift"] == []

    def test_golden_update_writes_to_dir(self, capsys, tmp_path):
        assert cli_main(["verifylab", "golden", "--update", "--dir", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["seeds"]) == 3
        # Base traces plus one per (scenario family, canonical seed).
        n_scenario = sum(len(s) for s in payload["scenario_seeds"].values())
        assert len(payload["updated"]) == 3 + n_scenario
        assert cli_main(["verifylab", "golden", "--dir", str(tmp_path)]) == 0
        capsys.readouterr()

    def test_serve_bench_emits_json(self, capsys):
        rc = cli_main(
            ["serve-bench", "--requests", "4", "--tanks", "2", "--workers", "1", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["modes"]) == {"batched", "per-request"}
        batched = payload["modes"]["batched"]
        assert batched["service"]["requests_per_s"] > 0
        assert batched["histograms"]["latency_s"]["count"] == 4

    def test_serve_bench_vector_engine_json(self, capsys):
        rc = cli_main(
            [
                "serve-bench",
                "--requests", "4",
                "--tanks", "2",
                "--workers", "1",
                "--engine", "vector",
                "--batched-only",
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        batched = payload["modes"]["batched"]
        assert batched["service"]["engine"] == "vector"
        assert "kernel_cache" in batched
        # Satellite: per-stage timing histograms surface in --json output.
        for stage in ("frontend", "amp_phase", "capacity", "filter"):
            assert batched["histograms"][f"stage_{stage}_s"]["count"] > 0

    def test_serve_bench_rejects_unknown_engine(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["serve-bench", "--engine", "simd"])
        capsys.readouterr()
