"""Tests for the soft-core ISA, assembler and CPU."""

import pytest

from repro.softcore.asm import AssemblyError, assemble
from repro.softcore.cpu import Cpu, CpuError, MemoryMap, MemoryRegion
from repro.softcore.isa import Instruction, bits_to_float, float_to_bits


def run(src: str, **kwargs) -> Cpu:
    cpu = Cpu(assemble(src), **kwargs)
    cpu.run()
    return cpu


class TestAssembler:
    def test_labels_and_data(self):
        p = assemble(
            """
            start: addi r1, r0, 5
                   br start
            .data
            tbl:   .word 1, 2, 3
            buf:   .space 8
            """
        )
        assert p.labels["start"] == 0
        assert p.labels["tbl"] == p.data_base
        assert p.labels["buf"] == p.data_base + 12
        assert len(p.data_image) == 20

    def test_unknown_opcode(self):
        with pytest.raises(AssemblyError, match="unknown opcode"):
            assemble("frobnicate r1, r2, r3")

    def test_undefined_label(self):
        with pytest.raises(AssemblyError, match="undefined label"):
            assemble("br nowhere")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError, match="duplicate label"):
            assemble("a: nop\na: nop")

    def test_operand_count_checked(self):
        with pytest.raises(AssemblyError):
            assemble("add r1, r2")

    def test_register_range(self):
        with pytest.raises(AssemblyError):
            assemble("add r32, r0, r0")

    def test_comments_and_hex(self):
        p = assemble("addi r1, r0, 0x10  # comment\n; full line comment\n")
        assert p.instructions[0].imm == 16

    def test_instruction_after_data_rejected(self):
        with pytest.raises(AssemblyError, match="after .data"):
            assemble(".data\nx: .word 1\naddi r1, r0, 1")

    def test_image_bytes(self):
        p = assemble("nop\nhalt\n.data\nb: .space 100")
        assert p.code_bytes == 8
        assert p.image_bytes == 108


class TestCpuArithmetic:
    def test_add_sub_mul(self):
        cpu = run("addi r1, r0, 7\naddi r2, r0, 5\nadd r3, r1, r2\nsub r4, r1, r2\nmul r5, r1, r2\nhalt")
        assert cpu.reg(3) == 12
        assert cpu.reg(4) == 2
        assert cpu.reg(5) == 35

    def test_r0_hardwired_zero(self):
        cpu = run("addi r0, r0, 99\nadd r1, r0, r0\nhalt")
        assert cpu.reg(0) == 0
        assert cpu.reg(1) == 0

    def test_negative_arithmetic(self):
        cpu = run("addi r1, r0, -5\naddi r2, r0, 3\nmul r3, r1, r2\nsrai r4, r3, 1\nhalt")
        assert cpu.reg(3) == (-15) & 0xFFFFFFFF
        assert cpu.reg(4) == (-8) & 0xFFFFFFFF  # arithmetic shift

    def test_logic_and_shifts(self):
        cpu = run(
            "addi r1, r0, 0xF0\nandi r2, r1, 0x3C\nori r3, r1, 0x0F\n"
            "xori r4, r1, 0xFF\nslli r5, r1, 4\nsrli r6, r1, 4\nhalt"
        )
        assert cpu.reg(2) == 0x30
        assert cpu.reg(3) == 0xFF
        assert cpu.reg(4) == 0x0F
        assert cpu.reg(5) == 0xF00
        assert cpu.reg(6) == 0x0F

    def test_compare(self):
        cpu = run("addi r1, r0, -1\naddi r2, r0, 1\ncmplt r3, r1, r2\ncmpltu r4, r1, r2\nhalt")
        assert cpu.reg(3) == 1  # signed: -1 < 1
        assert cpu.reg(4) == 0  # unsigned: 0xFFFFFFFF > 1


class TestControlFlow:
    def test_loop(self):
        cpu = run(
            "addi r1, r0, 0\naddi r2, r0, 10\n"
            "loop: addi r1, r1, 3\naddi r2, r2, -1\nbne r2, r0, loop\nhalt"
        )
        assert cpu.reg(1) == 30

    def test_subroutine_call(self):
        cpu = run(
            "addi r1, r0, 4\nbrl r28, double\nadd r3, r2, r0\nhalt\n"
            "double: add r2, r1, r1\njr r28"
        )
        assert cpu.reg(3) == 8

    def test_branch_taken_costs_more(self):
        taken = run("addi r1, r0, 1\nbeq r1, r1, skip\nskip: halt").cycles
        not_taken = run("addi r1, r0, 1\nbne r1, r1, skip\nskip: halt").cycles
        assert taken == not_taken + 2

    def test_runaway_detected(self):
        cpu = Cpu(assemble("loop: br loop"))
        with pytest.raises(CpuError, match="budget"):
            cpu.run(max_cycles=1000)


class TestMemory:
    def test_load_store(self):
        cpu = run(
            "addi r1, r0, 0x2000\naddi r2, r0, 1234\nsw r2, r1, 0\nlw r3, r1, 0\nhalt"
        )
        assert cpu.reg(3) == 1234

    def test_data_image_loaded(self):
        cpu = run("lw r1, r0, tbl\nlw r2, r0, tbl2\nhalt\n.data\ntbl: .word 42\ntbl2: .word 0x55")
        assert cpu.reg(1) == 42
        assert cpu.reg(2) == 0x55

    def test_unaligned_access_rejected(self):
        with pytest.raises(CpuError, match="unaligned"):
            run("addi r1, r0, 2\nlw r2, r1, 0\nhalt")

    def test_bus_error(self):
        with pytest.raises(CpuError, match="bus error"):
            run("addi r1, r0, 0x7000000\nlw r2, r1, 0\nhalt")

    def test_wait_states_charged(self):
        src = "lw r1, r0, v\nhalt\n.data\nv: .word 1"
        fast = Cpu(assemble(src), memory=MemoryMap([MemoryRegion("m", 0, 65536, 0)]))
        slow = Cpu(assemble(src), memory=MemoryMap([MemoryRegion("m", 0, 65536, 6)]))
        fast.run()
        slow.run()
        # 6 extra cycles per instruction fetch (2 insns) and per data access.
        assert slow.cycles == fast.cycles + 6 * 2 + 6

    def test_overlapping_regions_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            MemoryMap([MemoryRegion("a", 0, 1024), MemoryRegion("b", 512, 1024)])


class TestFsl:
    def test_put_get(self):
        cpu = Cpu(assemble("get r1, fsl0\naddi r2, r1, 1\nput r2, fsl1\nhalt"))
        cpu.fsl[0].rx.append(41)
        cpu.run()
        assert list(cpu.fsl[1].tx) == [42]

    def test_get_empty_raises(self):
        cpu = Cpu(assemble("get r1, fsl0\nhalt"))
        with pytest.raises(CpuError, match="empty"):
            cpu.run()


class TestSoftFloat:
    def test_float_roundtrip(self):
        for v in (0.0, 1.0, -3.25, 1e10, 2.5e-7):
            assert bits_to_float(float_to_bits(v)) == pytest.approx(v, rel=1e-6)

    def test_fadd_fmul(self):
        cpu = run(
            "lw r1, r0, a\nlw r2, r0, b\nfadd r3, r1, r2\nfmul r4, r1, r2\nhalt\n"
            f".data\na: .word 0x{float_to_bits(1.5):08X}\nb: .word 0x{float_to_bits(2.0):08X}"
        )
        assert cpu.reg_float(3) == pytest.approx(3.5)
        assert cpu.reg_float(4) == pytest.approx(3.0)

    def test_fsqrt_fatan2(self):
        import math

        cpu = run(
            "lw r1, r0, a\nfsqrt r2, r1, r1\nlw r3, r0, b\nfatan2 r4, r3, r1\nhalt\n"
            f".data\na: .word 0x{float_to_bits(9.0):08X}\nb: .word 0x{float_to_bits(9.0):08X}"
        )
        assert cpu.reg_float(2) == pytest.approx(3.0)
        assert cpu.reg_float(4) == pytest.approx(math.atan2(9.0, 9.0))

    def test_fdiv_by_zero_raises(self):
        with pytest.raises(CpuError, match="divide by zero"):
            run("fdiv r1, r0, r0\nhalt")

    def test_fsqrt_negative_raises(self):
        with pytest.raises(CpuError, match="negative"):
            run(f"lw r1, r0, a\nfsqrt r2, r1, r1\nhalt\n.data\na: .word 0x{float_to_bits(-1.0):08X}")

    def test_soft_float_is_expensive(self):
        """The soft-float cycle costs are what make the software baseline
        slow — an fmul must cost tens of integer-op times."""
        fmul = Instruction("fmul").base_cycles
        add = Instruction("add").base_cycles
        assert fmul > 30 * add

    def test_i2f_f2i(self):
        cpu = run("addi r1, r0, -7\ni2f r2, r1, 0\nf2i r3, r2, 0\nhalt")
        assert cpu.reg_float(2) == pytest.approx(-7.0)
        assert cpu.reg(3) == (-7) & 0xFFFFFFFF
