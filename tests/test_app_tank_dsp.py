"""Tests for the tank plant model and the reference DSP chain."""

import cmath
import math

import numpy as np
import pytest

from repro.app.dsp import (
    LevelFilter,
    amplitude_phase,
    capacity_from_phasors,
    goertzel,
    level_from_capacity,
    process_measurement,
    quantize,
)
from repro.app.tank import MeasurementCircuit, TankModel


class TestTankModel:
    def test_capacitance_endpoints(self):
        tank = TankModel(c_empty_pf=60, c_full_pf=480)
        assert tank.capacitance_pf(0.0) == 60
        assert tank.capacitance_pf(1.0) == 480
        assert tank.capacitance_pf(0.5) == 270

    def test_level_roundtrip(self):
        tank = TankModel()
        for level in (0.0, 0.3, 0.77, 1.0):
            c = tank.capacitance_pf(level)
            assert tank.level_from_capacitance(c) == pytest.approx(level)

    def test_level_clipping(self):
        tank = TankModel()
        assert tank.level_from_capacitance(tank.c_empty_pf - 50) == 0.0
        assert tank.level_from_capacitance(tank.c_full_pf + 50) == 1.0

    def test_out_of_range_level_rejected(self):
        with pytest.raises(ValueError):
            TankModel().capacitance_pf(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            TankModel(c_empty_pf=100, c_full_pf=50)
        with pytest.raises(ValueError):
            TankModel(r_loss_ohm=0)

    def test_impedance_capacitive(self):
        tank = TankModel()
        z = tank.impedance(300.0, 500e3)
        assert z.imag < 0  # capacitive
        assert abs(z) == pytest.approx(1.0 / (2 * math.pi * 500e3 * 300e-12), rel=0.01)


class TestCircuit:
    def test_transfer_magnitude_decreases_with_level(self):
        """More material -> more capacitance -> lower impedance -> smaller
        divider output: the measurement principle."""
        circ = MeasurementCircuit()
        mags = [abs(circ.tank_transfer(lv, 500e3)) for lv in (0.1, 0.5, 0.9)]
        assert mags[0] > mags[1] > mags[2]

    def test_capacitance_inversion_exact(self):
        circ = MeasurementCircuit()
        for level in (0.05, 0.4, 0.95):
            h = complex(circ.tank_transfer(level, 500e3))
            c = circ.capacitance_from_transfer(h, 500e3)
            assert c == pytest.approx(circ.tank.capacitance_pf(level), rel=1e-9)

    def test_degenerate_transfer_rejected(self):
        circ = MeasurementCircuit()
        with pytest.raises(ValueError, match="open circuit"):
            circ.capacitance_from_transfer(1.0 + 0j, 500e3)


class TestGoertzel:
    def test_matches_fft_bin(self):
        fs, f, n = 4e6, 500e3, 512
        rng = np.random.default_rng(1)
        x = rng.normal(0, 1, n)
        ours = goertzel(x, f, fs)
        k = int(f * n / fs)
        ref = np.fft.fft(x)[k] / (n / 2)
        assert ours == pytest.approx(complex(ref), rel=1e-9)

    def test_amplitude_of_pure_tone(self):
        fs, f, n = 4e6, 500e3, 512
        t = np.arange(n) / fs
        amp, _ph = amplitude_phase(0.37 * np.sin(2 * np.pi * f * t), f, fs)
        assert amp == pytest.approx(0.37, rel=1e-9)

    def test_phase_reference(self):
        fs, f, n = 4e6, 500e3, 512
        t = np.arange(n) / fs
        for phi in (-1.0, 0.0, 0.8):
            _amp, ph = amplitude_phase(np.cos(2 * np.pi * f * t + phi), f, fs)
            assert ph == pytest.approx(phi, abs=1e-9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            goertzel(np.array([]), 1.0, 2.0)


class TestCapacityPipeline:
    def test_synthetic_roundtrip(self):
        circ = MeasurementCircuit()
        fs, f, n = 4e6, 500e3, 512
        t = np.arange(n) / fs
        level = 0.63
        hm = complex(circ.tank_transfer(level, f))
        hr = complex(circ.reference_transfer(f))
        meas = abs(hm) * np.sin(2 * np.pi * f * t + cmath.phase(hm))
        ref = abs(hr) * np.sin(2 * np.pi * f * t + cmath.phase(hr))
        out = process_measurement(meas, ref, fs, f, circ)
        assert out.level == pytest.approx(level, abs=1e-6)
        assert out.capacitance_pf == pytest.approx(circ.tank.capacitance_pf(level), rel=1e-6)

    def test_common_gain_cancels(self):
        """The reference channel calibrates out common gain and phase —
        why the two-channel design works."""
        circ = MeasurementCircuit()
        fs, f, n = 4e6, 500e3, 512
        t = np.arange(n) / fs
        hm = complex(circ.tank_transfer(0.5, f))
        hr = complex(circ.reference_transfer(f))
        gain, phase_off = 0.123, 0.77
        meas = gain * abs(hm) * np.sin(2 * np.pi * f * t + cmath.phase(hm) + phase_off)
        ref = gain * abs(hr) * np.sin(2 * np.pi * f * t + cmath.phase(hr) + phase_off)
        out = process_measurement(meas, ref, fs, f, circ)
        assert out.level == pytest.approx(0.5, abs=1e-6)

    def test_zero_reference_rejected(self):
        circ = MeasurementCircuit()
        with pytest.raises(ValueError, match="reference"):
            capacity_from_phasors(0.1, 0.0, 0.0, 0.0, circ, 500e3)


class TestLevelFilter:
    def test_first_sample_passthrough(self):
        f = LevelFilter(alpha=0.25)
        assert f.update(0.8) == 0.8

    def test_smoothing(self):
        f = LevelFilter(alpha=0.5, initial=0.0)
        assert f.update(1.0) == 0.5
        assert f.update(1.0) == 0.75

    def test_converges(self):
        f = LevelFilter(alpha=0.3)
        out = 0.0
        for _ in range(50):
            out = f.update(0.6)
        assert out == pytest.approx(0.6, abs=1e-6)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            LevelFilter(alpha=0.0)


class TestQuantize:
    def test_grid(self):
        assert quantize(0.1234567, 10) == pytest.approx(round(0.1234567 * 1024) / 1024)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError, match="overflows"):
            quantize(3.0e5, 20, total_bits=24)

    def test_negative_values(self):
        assert quantize(-0.5, 8) == -0.5
