"""Hypothesis property tests for the consistent-hash ring.

The shard layer's correctness rests on three ring properties: removing a
shard moves *only* the keys that shard owned (minimal remap — warm
per-tank state elsewhere stays warm), ownership is reasonably balanced
across shards, and routing is a pure function of (membership, replicas,
salt) — identical across processes and restarts, which is what lets a
restarted router keep routing tanks to their old shards.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard.hashring import ConsistentHashRing, _point

#: Tank-id strategy: the runtime's ids are short printable strings.
_keys = st.lists(
    st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126),
        min_size=1,
        max_size=16,
    ),
    min_size=1,
    max_size=200,
    unique=True,
)

_shard_counts = st.integers(min_value=1, max_value=8)


@settings(max_examples=50, deadline=None)
@given(keys=_keys, shards=st.integers(min_value=2, max_value=8), data=st.data())
def test_removal_remaps_only_the_removed_shards_keys(keys, shards, data):
    """Minimal remap: after removing one shard, every key that shard did
    NOT own still routes to exactly the shard it routed to before."""
    ring = ConsistentHashRing(range(shards))
    victim = data.draw(st.sampled_from(ring.shard_ids))
    before = {key: ring.lookup(key) for key in keys}
    ring.remove_shard(victim)
    for key, owner in before.items():
        if owner != victim:
            assert ring.lookup(key) == owner, (
                f"key {key!r} moved {owner} -> {ring.lookup(key)} although "
                f"only shard {victim} was removed"
            )
        else:
            assert ring.lookup(key) != victim


@settings(max_examples=30, deadline=None)
@given(shards=_shard_counts)
def test_ring_balance_bound(shards):
    """With the default replica count, no shard owns a pathological share
    of a large synthetic keyspace: every shard gets keys, and the
    fullest shard carries at most 3x the fair share (the classic
    O(log N) consistent-hashing spread, with slack for small N)."""
    ring = ConsistentHashRing(range(shards))
    keys = [f"tank-{i}" for i in range(4000)]
    counts = ring.distribution(keys)
    assert set(counts) == set(range(shards))
    fair = len(keys) / shards
    assert min(counts.values()) > 0
    assert max(counts.values()) <= 3.0 * fair


@settings(max_examples=50, deadline=None)
@given(keys=_keys, shards=_shard_counts)
def test_routing_is_deterministic_across_ring_rebuilds(keys, shards):
    """Two independently constructed rings with the same membership agree
    on every key — the property that makes routing survive a router
    process restart (`hash()` would be salted per process; blake2b is
    not)."""
    a = ConsistentHashRing(range(shards))
    b = ConsistentHashRing(range(shards))
    for key in keys:
        assert a.lookup(key) == b.lookup(key)


@settings(max_examples=50, deadline=None)
@given(keys=_keys, shards=st.integers(min_value=2, max_value=8))
def test_membership_order_does_not_matter(keys, shards):
    """The ring is a set of (shard, replica) points: the order shards
    were added in (e.g. restart order after a crash) must not change
    routing."""
    forward = ConsistentHashRing(range(shards))
    backward = ConsistentHashRing(reversed(range(shards)))
    for key in keys:
        assert forward.lookup(key) == backward.lookup(key)


def test_point_hash_is_frozen():
    """Anchor the exact hash values: if ``_point`` ever changes (new
    algorithm, digest size, encoding), every deployed fleet's tank
    placement silently reshuffles on upgrade.  This pin makes that a
    loud, conscious decision."""
    assert _point("tank-0") == 0x8A14B9967EC18CC3
    assert _point("repro-shard:0:0") == 0xA60472E4F7C2BAD2
    assert _point("") == 0xE4A6A0577479B2B4
