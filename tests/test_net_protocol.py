"""Hypothesis property tests for the newline-delimited wire protocol.

The TCP front door's framing claim has two halves, and both are
byte-boundary claims, which is exactly what property testing is for:

* **Round trip under arbitrary chunking** — any valid request envelope
  survives encode → frame → split-at-arbitrary-socket-boundaries →
  incremental decode *byte-exact*, whatever the chunk boundaries and
  whatever other messages share the stream.
* **Hostile input is an error, never a hang** — truncated, oversized and
  garbage frames raise :class:`ProtocolError` only; the decoder never
  raises anything else, never loops, and always recovers to decode the
  next good line.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.net.protocol import (
    MAX_LINE_BYTES,
    LineDecoder,
    ProtocolError,
    decode_line,
    encode_message,
)
from repro.serve.requests import MeasurementRequest
from repro.shard.wire import (
    KIND_SUBMIT,
    KNOWN_KINDS,
    request_from_wire,
    request_to_wire,
)

# ----------------------------------------------------------- strategies

_tank_ids = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=24
)

_requests = st.builds(
    MeasurementRequest,
    request_id=st.integers(min_value=0, max_value=2**53 - 1),
    tank_id=_tank_ids,
    level=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    pipeline=st.lists(
        st.sampled_from(["frontend", "amp_phase", "capacity", "filter"]),
        min_size=1,
        max_size=4,
    ).map(tuple),
    deadline_s=st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=1e9, allow_nan=False)
    ),
    max_attempts=st.integers(min_value=1, max_value=9),
)


def _chunked(data: bytes, cuts) -> list:
    """Split ``data`` at the (sorted, deduplicated) cut offsets."""
    points = sorted({min(c, len(data)) for c in cuts})
    chunks = []
    prev = 0
    for point in points:
        chunks.append(data[prev:point])
        prev = point
    chunks.append(data[prev:])
    return [c for c in chunks if c]


# ------------------------------------------------- round-trip properties


@settings(max_examples=120, deadline=None)
@given(
    requests=st.lists(_requests, min_size=1, max_size=8),
    cuts=st.lists(st.integers(min_value=0, max_value=4096), max_size=32),
)
def test_requests_survive_arbitrary_chunk_boundaries(requests, cuts):
    """encode → concatenate → split at arbitrary byte offsets →
    incremental decode reproduces every request field-exact, in order."""
    stream = b"".join(
        encode_message(KIND_SUBMIT, {"request": request_to_wire(r)}) for r in requests
    )
    decoder = LineDecoder()
    decoded = []
    for chunk in _chunked(stream, cuts):
        decoded.extend(decoder.feed(chunk))
    assert len(decoded) == len(requests)
    for (kind, payload), original in zip(decoded, requests):
        assert kind == KIND_SUBMIT
        rebuilt = request_from_wire(payload["request"])
        assert request_to_wire(rebuilt) == request_to_wire(original)
    assert decoder.pending_bytes == 0


@settings(max_examples=100, deadline=None)
@given(request=_requests, cut=st.integers(min_value=0, max_value=10_000))
def test_single_byte_feed_equals_single_feed(request, cut):
    """Byte-at-a-time feeding and whole-line feeding decode identically
    (the strictest chunk boundary there is), and a prefix cut leaves the
    tail pending, never half-decoded."""
    line = encode_message(KIND_SUBMIT, {"request": request_to_wire(request)})
    whole = LineDecoder().feed(line)
    bytewise = LineDecoder()
    out = []
    for i in range(len(line)):
        out.extend(bytewise.feed(line[i : i + 1]))
    assert out == whole
    prefix = LineDecoder()
    head = line[: min(cut, len(line) - 1)]
    assert prefix.feed(head) == []
    assert prefix.pending_bytes == len(head)


@settings(max_examples=60, deadline=None)
@given(request=_requests)
def test_round_trip_is_byte_exact(request):
    """Two encode passes over the decoded request produce identical
    bytes: floats survive the wire shortest-repr, so nothing drifts."""
    first = encode_message(KIND_SUBMIT, {"request": request_to_wire(request)})
    kind, payload = decode_line(first)
    second = encode_message(kind, {"request": request_to_wire(request_from_wire(payload["request"]))})
    assert first == second


# ----------------------------------------------- hostile-input properties


@settings(max_examples=120, deadline=None)
@given(garbage=st.binary(min_size=1, max_size=512))
def test_garbage_raises_protocol_error_only(garbage):
    """Arbitrary bytes fed to the decoder either decode (the rare case
    where fuzz hits valid JSON) or raise ProtocolError — never anything
    else, and the decoder stays usable afterwards."""
    decoder = LineDecoder()
    # Each embedded newline ends one (almost certainly bad) line, and the
    # decoder raises once per bad line — drain them all.
    bad_lines = garbage.count(b"\n") + 1
    fed = garbage + b"\n"
    for _ in range(bad_lines):
        try:
            decoder.feed(fed)
        except ProtocolError:
            fed = b""
            continue
        fed = b""
    assert decoder.pending_bytes == 0
    good = encode_message(KIND_SUBMIT, {"request": request_to_wire(
        MeasurementRequest(request_id=1, tank_id="t", level=0.5))})
    for chunk in (good[:7], good[7:]):
        try:
            messages = decoder.feed(chunk)
        except ProtocolError:
            pytest.fail("decoder did not recover after a garbage line")
    assert messages and messages[-1][0] == KIND_SUBMIT


@settings(max_examples=40, deadline=None)
@given(
    payload_size=st.integers(min_value=0, max_value=200),
    chunk_size=st.integers(min_value=1, max_value=4096),
)
def test_oversized_line_is_discarded_not_fatal(payload_size, chunk_size):
    """An unterminated line past the cap raises exactly once, costs
    bounded memory, and the line's eventual tail is discarded so the
    next line decodes clean."""
    decoder = LineDecoder(max_line_bytes=1024)
    hostile = b"x" * (1024 + payload_size) + b"tail"
    raised = 0
    for i in range(0, len(hostile), chunk_size):
        try:
            assert decoder.feed(hostile[i : i + chunk_size]) == []
        except ProtocolError:
            raised += 1
        assert decoder.pending_bytes <= 1024 + chunk_size
    assert raised == 1
    assert decoder.feed(b"...more of the same giant line...") == []
    good = encode_message(KIND_SUBMIT, {"request": request_to_wire(
        MeasurementRequest(request_id=2, tank_id="t", level=0.25))})
    assert decoder.feed(b"\n" + good) and decoder.lines_discarded == 1


def test_truncated_envelope_is_a_protocol_error():
    """A syntactically-cut JSON line (the classic mid-write disconnect)
    raises ProtocolError when its newline finally arrives."""
    line = encode_message(KIND_SUBMIT, {"request": request_to_wire(
        MeasurementRequest(request_id=3, tank_id="t", level=0.5))})
    decoder = LineDecoder()
    assert decoder.feed(line[: len(line) // 2]) == []
    with pytest.raises(ProtocolError):
        decoder.feed(b"\n")
    # The truncated line was consumed; the stream resumes.
    assert decoder.feed(line) != []


def test_unknown_kind_and_bad_envelope_shapes():
    """Envelope-level damage (unknown kind, wrong version, non-object
    payload) is ProtocolError, and bare keepalive newlines are free."""
    with pytest.raises(ProtocolError):
        decode_line(json.dumps({"v": 1, "kind": "no-such-kind", "payload": {}}).encode())
    with pytest.raises(ProtocolError):
        decode_line(json.dumps({"v": 99, "kind": "ping", "payload": {}}).encode())
    with pytest.raises(ProtocolError):
        decode_line(json.dumps({"v": 1, "kind": "ping", "payload": 7}).encode())
    with pytest.raises(ProtocolError):
        encode_message("no-such-kind", {})
    decoder = LineDecoder()
    assert decoder.feed(b"\n\r\n\n") == []
    assert decoder.messages_decoded == 0


def test_encode_rejects_oversized_messages():
    """A payload that would exceed the line cap is refused at encode
    time (ProtocolError), not shipped as an unparseable frame."""
    with pytest.raises(ProtocolError):
        encode_message(KIND_SUBMIT, {"request": {"blob": "y" * MAX_LINE_BYTES}})


@settings(max_examples=60, deadline=None)
@given(kind=st.sampled_from(sorted(KNOWN_KINDS)), seq=st.integers())
def test_crlf_and_lf_terminators_decode_identically(kind, seq):
    decoder = LineDecoder()
    body = encode_message(kind, {"seq": seq})
    with_crlf = body[:-1] + b"\r\n"
    assert decoder.feed(body) == decoder.feed(with_crlf)
