"""Cross-module integration tests: the flows the paper's evaluation runs,
end to end."""

import io

import pytest

from repro.activity import annotate_netlist, toggle_rates, vcd_from_simulator
from repro.activity.vcd import parse_vcd
from repro.app.system import FpgaReconfigSystem, FpgaSoftwareSystem
from repro.core.par_power import run_power_aware_flow
from repro.fabric.device import get_device
from repro.netlist.blocks import BlockFootprint, block_netlist
from repro.netlist.netlist import Netlist
from repro.par.placer import PlacerOptions
from repro.reconfig.ports import Icap
from repro.sim.events import Simulator


class TestSimulationToPowerFlow:
    """The full §4.3 chain: simulate -> VCD -> communication rates ->
    netlist annotation -> PAR -> power optimization."""

    def test_full_chain(self):
        # 1. Build a design whose activity we know: three counters of very
        #    different toggle rates feeding combinational logic.
        sim = Simulator(trace=True)
        clk = sim.clock("clk", period_ns=20)
        fast = sim.signal("fast", width=4)
        slow = sim.signal("slow", width=12)
        clk.on_rising_edge(lambda: fast.set((fast.value + 1) & 0xF))
        clk.on_rising_edge(lambda: slow.set((slow.value + 1) & 0xFFF))
        sim.run(us=20)

        # 2. Dump and re-parse the VCD, extract communication rates.
        buf = io.StringIO()
        vcd_from_simulator(sim, buf)
        report = toggle_rates(parse_vcd(buf.getvalue()), clock_period_ps=20_000)
        assert report.get("fast") > report.get("slow")

        # 3. Annotate a netlist whose nets carry those signal names.
        from repro.netlist.cells import SLICE_LOGIC, SLICE_REG

        nl = Netlist("chain")
        a = nl.add_cell("a", SLICE_REG)
        b = nl.add_cell("b", SLICE_REG)
        c = nl.add_cell("c", SLICE_LOGIC)
        d = nl.add_cell("d", SLICE_LOGIC)
        nl.add_net("fast", a, [c, d])
        nl.add_net("slow", b, [c])
        nl.add_net("glue", c, [d])
        matched = annotate_netlist(nl, report)
        assert matched == 2
        assert nl.net("fast").activity > nl.net("slow").activity

        # 4. Run the power-aware flow on a realistic block carrying the
        #    same heavy-tailed activity shape.
        block = block_netlist(BlockFootprint("blk", slices=90, mean_activity=0.1), seed=3)
        result = run_power_aware_flow(
            block,
            get_device("XC3S200"),
            clock_mhz=50.0,
            top_n=6,
            placer_options=PlacerOptions(steps=10),
        )
        assert result.power_after.routing_w <= result.power_before.routing_w
        hottest = [r.activity for r in result.optimization.records]
        assert hottest == sorted(hottest, reverse=True)


class TestMeasurementConsistency:
    """Software and reconfigurable-hardware systems must agree on the
    measured level — same algorithms, different substrates."""

    def test_sw_vs_hw_agreement(self):
        level = 0.42
        sw = FpgaSoftwareSystem()
        hw = FpgaReconfigSystem(port=Icap())
        r_sw = sw.run_cycle(level)
        r_hw = hw.run_cycle(level)
        assert r_sw.level_measured == pytest.approx(r_hw.level_measured, abs=0.02)
        # And the hardware is orders of magnitude faster.
        assert r_sw.processing_time_s > 100 * r_hw.processing_time_s

    def test_filter_convergence_over_cycles(self):
        system = FpgaReconfigSystem(port=Icap())
        readings = [system.run_cycle(0.7).level_measured for _ in range(4)]
        assert readings[-1] == pytest.approx(0.7, abs=0.04)

    def test_reconfig_loads_follow_processing_flow(self):
        """Modules are configured 'after each other, following the flow of
        the data processing'."""
        system = FpgaReconfigSystem(port=Icap())
        system.run_cycle(0.5)
        load_order = [l.module for l in system.controller.loads]
        assert load_order == ["frontend", "amp_phase", "capacity", "filter"]

    def test_second_cycle_reloads_everything(self):
        """With one slot, every module must be reconfigured again each
        cycle (nothing stays resident)."""
        system = FpgaReconfigSystem(port=Icap())
        system.run_cycle(0.5)
        first = len(system.controller.loads)
        system.run_cycle(0.5)
        assert len(system.controller.loads) == 2 * first
        assert all(l.total_time_s > 0 for l in system.controller.loads)
