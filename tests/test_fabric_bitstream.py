"""Tests for the frame-based bitstream model."""

import pytest

from repro.fabric.bitstream import (
    SYNC_WORD,
    Bitstream,
    BitstreamGenerator,
    Frame,
    parse_type1_header,
    _type1_header,
)
from repro.fabric.device import FRAMES_PER_CLB_COLUMN, get_device
from repro.fabric.grid import Grid, Region


@pytest.fixture
def dev():
    return get_device("XC3S400")


@pytest.fixture
def gen(dev):
    return BitstreamGenerator(dev)


class TestPackets:
    def test_header_roundtrip(self):
        word = _type1_header(0x2, 85)
        assert parse_type1_header(word) == (0x2, 85)

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError, match="type-1"):
            parse_type1_header(0xDEADBEEF)

    def test_too_long_packet_rejected(self):
        with pytest.raises(ValueError, match="too long"):
            _type1_header(0x2, 1 << 11)


class TestPartialBitstreams:
    def test_frame_count_per_column(self, gen, dev):
        region = Grid(dev).column_region(5, 5)
        bs = gen.partial_for_region(region, "mod")
        assert bs.frame_count == FRAMES_PER_CLB_COLUMN
        assert bs.partial

    def test_multi_column(self, gen, dev):
        region = Grid(dev).column_region(4, 9)
        bs = gen.partial_for_region(region, "mod")
        assert bs.frame_count == 6 * FRAMES_PER_CLB_COLUMN

    def test_non_column_aligned_rejected(self, gen, dev):
        region = Region(4, 1, 9, dev.clb_rows - 1)
        with pytest.raises(ValueError, match="column aligned"):
            gen.partial_for_region(region, "mod")

    def test_size_scales_with_columns(self, gen, dev):
        grid = Grid(dev)
        small = gen.partial_for_region(grid.column_region(0, 3), "m").total_bytes
        large = gen.partial_for_region(grid.column_region(0, 7), "m").total_bytes
        assert large > 1.8 * small

    def test_deterministic_payload(self, gen, dev):
        region = Grid(dev).column_region(2, 4)
        a = gen.partial_for_region(region, "amp_phase").to_bytes()
        b = gen.partial_for_region(region, "amp_phase").to_bytes()
        assert a == b

    def test_different_modules_differ(self, gen, dev):
        region = Grid(dev).column_region(2, 4)
        a = gen.partial_for_region(region, "amp_phase").to_bytes()
        b = gen.partial_for_region(region, "filter").to_bytes()
        assert a != b


class TestSerialisation:
    def test_roundtrip(self, gen, dev):
        region = Grid(dev).column_region(10, 14)
        bs = gen.partial_for_region(region, "mod")
        back = Bitstream.from_bytes(bs.to_bytes(), dev.name)
        assert back.frame_count == bs.frame_count
        assert [f.address for f in back.frames] == [f.address for f in bs.frames]
        assert back.frames[0].words == bs.frames[0].words

    def test_sync_word_present(self, gen, dev):
        raw = gen.partial_for_region(Grid(dev).column_region(0, 0), "m").to_bytes()
        assert SYNC_WORD.to_bytes(4, "big") in raw

    def test_crc_detects_corruption(self, gen, dev):
        raw = bytearray(gen.partial_for_region(Grid(dev).column_region(0, 0), "m").to_bytes())
        raw[40] ^= 0xFF  # flip a payload byte
        with pytest.raises(ValueError, match="CRC"):
            Bitstream.from_bytes(bytes(raw))

    def test_unaligned_rejected(self):
        with pytest.raises(ValueError, match="word aligned"):
            Bitstream.from_bytes(b"\x00" * 7)

    def test_missing_sync_rejected(self):
        with pytest.raises(ValueError, match="sync"):
            Bitstream.from_bytes(b"\x00" * 16)


class TestFullBitstream:
    def test_full_covers_frame_count(self, gen, dev):
        bs = gen.full("top")
        assert bs.frame_count == dev.frame_count
        assert not bs.partial

    def test_full_size_near_datasheet(self, gen, dev):
        """The full-device image should be close to the DS099 config size."""
        bs = gen.full("top")
        ratio = bs.payload_bytes / dev.config_bytes
        assert 0.9 < ratio < 1.2

    def test_partial_much_smaller_than_full(self, gen, dev):
        """The point of partial reconfiguration: a slot's bitstream is a
        fraction of the device's."""
        full = gen.full("top").total_bytes
        slot = gen.partial_for_region(Grid(dev).column_region(8, 27), "m").total_bytes
        assert slot < 0.75 * full
