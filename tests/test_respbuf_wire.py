"""Zero-copy response path: block encoding must be byte-identical to the
per-response encoding it replaced.

The sharded oracle's exactness guarantee rides on the wire codec's
shortest-round-trip float encoding; swapping per-response dicts for a
structure-of-arrays block is only safe if no byte changes.  These tests
pin that equivalence over hand-picked extremes, hypothesis fuzz, and the
live ``FleetService(on_deliver_block=...)`` seam.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import FleetService, synthetic_load
from repro.serve.batching import FaultInjector
from repro.serve.requests import (
    STATUS_EXPIRED,
    STATUS_FAILED,
    STATUS_OK,
    MeasurementResponse,
)
from repro.serve.respbuf import LaneBuffers, ResponseBlock
from repro.shard.wire import (
    KIND_RESPONSE,
    decode,
    encode,
    encode_responses_block,
    response_from_wire,
    response_to_wire,
)


def legacy_encode(responses):
    return encode(
        KIND_RESPONSE, {"responses": [response_to_wire(r) for r in responses]}
    )


def _response(i, **kwargs):
    defaults = dict(
        request_id=i,
        tank_id=f"tank-{i:03d}",
        status=STATUS_OK,
        level_measured=0.25 + i / 7.0,
        capacitance_pf=140.0 + i * 0.1,
        energy_j=1e-3 * i,
        device_time_s=2e-6 * i,
        latency_s=3e-4 * i,
        attempts=1 + i % 3,
        worker=i % 2,
        batch_id=i // 4,
        batch_size=4,
        error="",
    )
    defaults.update(kwargs)
    return MeasurementResponse(**defaults)


# ------------------------------------------------------- byte equality


def test_block_encoding_matches_legacy_bytes():
    responses = [_response(i) for i in range(9)]
    block = ResponseBlock.from_responses(responses)
    assert encode_responses_block(block) == legacy_encode(responses)


def test_block_encoding_none_fields_and_unicode():
    responses = [
        _response(
            0,
            status=STATUS_FAILED,
            level_measured=None,
            capacitance_pf=None,
            error='fault persisted — "tank-000"\\after 3 attempts',
        ),
        _response(1, tank_id="réservoir-λ-001", worker=None, batch_id=None),
        _response(
            2,
            status=STATUS_EXPIRED,
            level_measured=None,
            capacitance_pf=None,
            error="deadline exceeded between in-batch retry sweeps",
        ),
    ]
    block = ResponseBlock.from_responses(responses)
    data = encode_responses_block(block)
    assert data == legacy_encode(responses)
    kind, payload = decode(data)
    assert kind == KIND_RESPONSE
    rebuilt = [response_from_wire(d) for d in payload["responses"]]
    assert rebuilt == responses


@pytest.mark.parametrize(
    "value",
    [
        0.0,
        -0.0,
        1e15,
        1e16,
        1e16 + 2,
        5e-324,
        1.7976931348623157e308,
        1 / 3,
        math.pi,
        0.1 + 0.2,
    ],
)
def test_block_encoding_float_extremes(value):
    responses = [_response(0, level_measured=value, capacitance_pf=value)]
    block = ResponseBlock.from_responses(responses)
    data = encode_responses_block(block)
    assert data == legacy_encode(responses)
    payload = decode(data)[1]["responses"][0]
    # Shortest-repr round trip: the exact bits survive the wire.
    assert math.copysign(1.0, payload["level_measured"]) == math.copysign(1.0, value)
    assert payload["level_measured"] == value


finite = st.floats(allow_nan=False, allow_infinity=False)
maybe_finite = st.one_of(st.none(), finite)
text = st.text(max_size=40)


@given(
    rows=st.lists(
        st.tuples(
            st.integers(0, 2**31),
            text,
            maybe_finite,
            maybe_finite,
            st.one_of(st.none(), st.integers(0, 64)),
            text,
        ),
        min_size=0,
        max_size=12,
    )
)
@settings(max_examples=150, deadline=None)
def test_block_encoding_fuzz(rows):
    responses = [
        _response(
            rid,
            tank_id=tank or "t",
            status=STATUS_OK if level is not None else STATUS_FAILED,
            level_measured=level,
            capacitance_pf=c_pf,
            worker=worker,
            error=error,
        )
        for rid, tank, level, c_pf, worker, error in rows
    ]
    block = ResponseBlock.from_responses(responses)
    data = encode_responses_block(block)
    assert data == legacy_encode(responses)
    # And the bytes are valid JSON regardless of content.
    assert json.loads(data.decode("utf-8"))["kind"] == KIND_RESPONSE


# ----------------------------------------------------------- the block


def test_block_grows_past_initial_capacity():
    block = ResponseBlock(2)
    responses = [_response(i) for i in range(25)]
    for response in responses:
        block.push(response)
    assert len(block) == 25
    assert encode_responses_block(block) == legacy_encode(responses)


def test_push_from_lanes_copies_engine_results():
    lanes = LaneBuffers(4)
    lanes.c_pf[2] = 151.25
    lanes.level[2] = 0.625
    block = ResponseBlock(4)
    block.push(_response(7, level_measured=None, capacitance_pf=None), lanes, row=2)
    assert block.level[0] == 0.625
    assert block.c_pf[0] == 151.25
    # Untouched lanes stay NaN and encode as null.
    block.push(_response(8, level_measured=None, capacitance_pf=None), lanes, row=3)
    payload = decode(encode_responses_block(block))[1]
    assert payload["responses"][1]["level_measured"] is None


def test_lane_buffers_start_nan():
    lanes = LaneBuffers(6)
    assert np.isnan(lanes.c_pf).all()
    assert np.isnan(lanes.level).all()


# ------------------------------------------------------ delivery seam


def test_service_block_delivery_matches_responses():
    """The on_deliver_block seam sees exactly the terminal responses the
    service returns, and its blocks encode byte-identically."""
    blocks = []
    service = FleetService(
        workers=1,
        max_batch=4,
        batched=True,
        seed=11,
        queue_capacity=32,
        on_deliver_block=blocks.append,
    ).start()
    requests = synthetic_load(10, n_tanks=3)
    accepted, rejected = service.submit_many(requests)
    assert not rejected
    assert service.await_responses(accepted, timeout_s=120)
    assert service.shutdown()

    by_id = {r.request_id: r for r in service.responses()}
    seen = []
    for block in blocks:
        kind, payload = decode(encode_responses_block(block))
        assert kind == KIND_RESPONSE
        seen.extend(response_from_wire(d) for d in payload["responses"])
    assert {r.request_id for r in seen} == set(by_id)
    for response in seen:
        assert response == by_id[response.request_id]


def test_service_block_delivery_under_counter_faults():
    """Faulted requests retried by in-batch sweeps still deliver through
    the block seam with exact wire equality."""
    blocks = []
    service = FleetService(
        workers=1,
        max_batch=8,
        batched=True,
        seed=5,
        fault_injector=FaultInjector(0.5, seed=5, retry_rate=0.25, mode="counter"),
        queue_capacity=32,
        on_deliver_block=blocks.append,
    ).start()
    requests = synthetic_load(12, n_tanks=4)
    accepted, rejected = service.submit_many(requests)
    assert not rejected
    assert service.await_responses(accepted, timeout_s=120)
    assert service.shutdown()

    assert service.metrics.counter("retries_in_batch") > 0
    by_id = {r.request_id: r for r in service.responses()}
    seen = {}
    for block in blocks:
        payload = decode(encode_responses_block(block))[1]
        for d in payload["responses"]:
            response = response_from_wire(d)
            seen[response.request_id] = response
    assert seen == by_id
