"""Tests of repro.trace: span model, tracer seam, export, reports, and
the tracing integration across the serve path.

The differential test at the bottom is the load-bearing one: the means
reconstructed from exported spans must equal the runtime's own
``stage_<name>_s`` histograms, proving the trace pipeline measures the
same quantity the metrics do rather than a lookalike.
"""

import json
from pathlib import Path

import pytest

from repro.serve import FleetService, MeasurementRequest, synthetic_load
from repro.trace import (
    JsonlExporter,
    NULL_TRACER,
    Span,
    Trace,
    TraceSink,
    Tracer,
    read_traces,
    render_exemplars,
    render_flamegraph,
    stage_breakdown,
    stage_compute_means,
    trace_report,
    write_traces,
)
from repro.trace.report import _fmt_time, _percentile

GOLDEN_PATH = Path(__file__).parent / "golden" / "trace_structure.json"
ENERGY_GOLDEN_PATH = Path(__file__).parent / "golden" / "trace_structure_energy.json"

#: Spans whose presence depends on cross-run cache temperature, excluded
#: from golden-structure comparison (see golden fixture notes).
_UNSTABLE_SPANS = {"artifact_build"}


# ------------------------------------------------------------------ span model


def test_span_wall_s_prefers_exact_attr():
    span = Span("compute", t0_s=1.0, t1_s=2.0)
    assert span.wall_s == pytest.approx(1.0)
    span.attrs["wall_s"] = 0.25  # the emitter's exact perf_counter window
    assert span.wall_s == pytest.approx(0.25)


def test_span_dict_roundtrip():
    span = Span("reconfig", 0.5, 0.75, depth=2, attrs={"stage": "filter", "cached": True})
    clone = Span.from_dict(json.loads(json.dumps(span.to_dict())))
    assert clone == span


def test_trace_begin_end_nesting():
    trace = Trace("t")
    trace.begin("execute", t0=0.0)
    trace.begin("stage:frontend", t0=0.1)
    trace.add("reconfig", 0.1, 0.2)
    trace.end("stage:frontend", t1=0.5, requests=4)
    trace.end("execute", t1=0.6)
    assert trace.structure() == [
        (0, "execute"),
        (1, "stage:frontend"),
        (2, "reconfig"),
    ]
    stage = trace.find("stage:frontend")[0]
    assert stage.t1_s == 0.5 and stage.attrs["requests"] == 4
    assert trace.depth == 0


def test_trace_end_without_open_raises():
    with pytest.raises(ValueError, match="no open span"):
        Trace("t").end("execute")


def test_trace_end_wrong_name_raises():
    trace = Trace("t")
    trace.begin("outer", t0=0.0)
    trace.begin("inner", t0=0.0)
    with pytest.raises(ValueError, match="innermost open span"):
        trace.end("outer")


def test_trace_extend_offsets_depth():
    segment = Trace("batch-1")
    segment.begin("execute", t0=0.0)
    segment.add("reconfig", 0.0, 0.1)
    segment.end("execute", t1=0.2)

    trace = Trace("req-1")
    trace.begin("request", t0=0.0)
    trace.extend(segment)
    trace.end("request", t1=0.3)
    assert trace.structure() == [(0, "request"), (1, "execute"), (2, "reconfig")]
    # Grafts are copies: mutating the request trace leaves the segment alone.
    trace.spans[1].attrs["touched"] = True
    assert "touched" not in segment.spans[0].attrs


def test_trace_close_open_marks_unfinished():
    trace = Trace("t")
    trace.begin("execute", t0=0.0)
    trace.begin("stage:filter", t0=0.1)
    assert trace.close_open(t1=0.9) == 2
    assert all(s.t1_s == 0.9 and s.attrs["unfinished"] for s in trace.spans)
    assert trace.depth == 0


def test_trace_walk_yields_ancestor_paths():
    trace = Trace("t")
    trace.begin("a", t0=0.0)
    trace.begin("b", t0=0.0)
    trace.end("b", t1=0.1)
    trace.end("a", t1=0.2)
    trace.add("c", 0.2, 0.3)
    assert [path for path, _ in trace.walk()] == [("a",), ("a", "b"), ("c",)]


def test_trace_dict_roundtrip_and_empty_duration():
    assert Trace("empty").duration_s == 0.0
    trace = Trace("req-3", request_id=3, tank_id="tank-1")
    trace.add("admit", 1.0, 1.0)
    trace.add("respond", 2.5, 2.5, status="ok")
    clone = Trace.from_dict(trace.to_dict())
    assert clone.trace_id == "req-3" and clone.request_id == 3
    assert clone.tank_id == "tank-1"
    assert clone.structure() == trace.structure()
    assert clone.duration_s == pytest.approx(1.5)


# ------------------------------------------------------------------ sink/tracer


def _finished_trace(trace_id, duration):
    trace = Trace(trace_id)
    trace.add("respond", 0.0, duration)
    return trace


def test_sink_ring_is_bounded():
    sink = TraceSink(capacity=3, exemplars=0)
    for i in range(7):
        sink.offer(_finished_trace(f"t{i}", 0.1))
    kept = [t.trace_id for t in sink.traces()]
    assert kept == ["t4", "t5", "t6"]
    assert sink.finished == 7


def test_sink_keeps_slowest_exemplars():
    sink = TraceSink(capacity=2, exemplars=3)
    for i, duration in enumerate([0.1, 0.9, 0.2, 0.5, 0.05, 0.7]):
        sink.offer(_finished_trace(f"t{i}", duration))
    slowest = [t.trace_id for t in sink.exemplars()]
    assert slowest == ["t1", "t5", "t3"]  # 0.9, 0.7, 0.5 — slowest first


def test_sink_exporter_and_snapshot_counts():
    exported = []
    sink = TraceSink(capacity=4, exemplars=2, exporter=exported.append)
    sink.offer(_finished_trace("a", 0.3))
    sink.offer(_finished_trace("b", 0.1))
    snap = sink.snapshot()
    assert [t.trace_id for t in exported] == ["a", "b"]
    assert snap["finished"] == snap["exported"] == 2
    assert snap["ring"] == 2 and snap["ring_capacity"] == 4
    assert snap["slowest_s"] == pytest.approx(0.3)


def test_sink_validation():
    with pytest.raises(ValueError):
        TraceSink(capacity=0)
    with pytest.raises(ValueError):
        TraceSink(exemplars=-1)


def test_disabled_tracer_is_inert():
    tracer = Tracer(enabled=False)
    assert tracer.start(1, "tank") is None
    assert tracer.segment("batch") is None
    tracer.emit("anything", 0.0, 1.0)
    assert tracer.finish(1) is None
    tracer.close()
    assert tracer.sink.finished == 0
    assert not tracer.runtime.spans
    assert NULL_TRACER.enabled is False


def test_finish_unknown_request_is_noop():
    tracer = Tracer()
    assert tracer.finish(12345, status="ok") is None
    assert tracer.sink.finished == 0


def test_finish_closes_open_spans_and_appends_respond():
    tracer = Tracer()
    trace = tracer.start(7, "tank-9")
    trace.begin("queue", t0=0.0)  # a failure path left it open
    assert tracer.active_count() == 1
    finished = tracer.finish(7, status="failed")
    assert finished is trace
    assert tracer.active(7) is None and tracer.active_count() == 0
    assert finished.spans[0].attrs["unfinished"] is True
    assert finished.spans[-1].name == "respond"
    assert finished.spans[-1].attrs["status"] == "failed"
    assert tracer.sink.traces() == [finished]


def test_emit_targets_ambient_then_runtime():
    tracer = Tracer()
    segment = tracer.segment("batch-1")
    tracer.push(segment)
    try:
        tracer.emit("kernel:filter", 0.0, 0.1, requests=4)
    finally:
        tracer.pop()
    tracer.emit("artifact_build", 0.2, 0.3, kind="bitstream")
    assert [s.name for s in segment.spans] == ["kernel:filter"]
    assert [s.name for s in tracer.runtime.spans] == ["artifact_build"]
    assert tracer.ambient() is None


def test_close_flushes_runtime_and_is_idempotent():
    class Closeable:
        def __init__(self):
            self.calls = 0
            self.traces = []

        def __call__(self, trace):
            self.traces.append(trace)

        def close(self):
            self.calls += 1

    exporter = Closeable()
    tracer = Tracer(sink=TraceSink(exporter=exporter))
    tracer.emit("artifact_build", 0.0, 0.1)
    tracer.close()
    tracer.close()
    assert exporter.calls == 1
    assert [t.trace_id for t in exporter.traces] == ["runtime"]


# --------------------------------------------------------------------- export


def test_jsonl_roundtrip(tmp_path):
    traces = [_finished_trace("a", 0.2), _finished_trace("b", 0.4)]
    traces[0].spans[0].attrs["status"] = "ok"
    path = write_traces(tmp_path / "t.jsonl", traces)
    loaded = read_traces(path)
    assert [t.trace_id for t in loaded] == ["a", "b"]
    assert loaded[0].spans[0].attrs == {"status": "ok"}
    assert loaded[1].duration_s == pytest.approx(0.4)


def test_read_traces_reports_malformed_line(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(
        json.dumps(_finished_trace("ok", 0.1).to_dict()) + "\n{not json\n"
    )
    with pytest.raises(ValueError, match=":2:"):
        read_traces(path)
    with pytest.raises(FileNotFoundError):
        read_traces(tmp_path / "absent.jsonl")


def test_exporter_opens_file_lazily(tmp_path):
    path = tmp_path / "out.jsonl"
    with JsonlExporter(path) as exporter:
        assert not path.exists()  # nothing exported, no file
        exporter(_finished_trace("t", 0.1))
        assert exporter.written == 1
    assert len(read_traces(path)) == 1


# --------------------------------------------------------------------- report


def test_percentile_handles_empty_and_single():
    assert _percentile([], 95.0) == 0.0
    assert _percentile([0.4], 0.0) == _percentile([0.4], 95.0) == 0.4
    assert _percentile([1.0, 3.0], 50.0) == pytest.approx(2.0)


def test_fmt_time_adapts_units():
    assert _fmt_time(60e-6).strip() == "60.0us"
    assert _fmt_time(0.118).strip() == "118.0ms"
    assert _fmt_time(2.5).strip() == "2.50s"


def _grafted_pair():
    """Two request traces sharing one batch's grafted segment spans —
    the shape the executor produces for a 2-request batch."""
    shared = [
        Span("execute", 1.0, 1.5, 0, {"batch_id": 1}),
        Span("stage:frontend", 1.0, 1.4, 1,
             {"batch_id": 1, "stage": "frontend", "requests": 2,
              "cycles": 4096, "energy_j": 2e-7}),
        Span("reconfig", 1.0, 1.1, 2,
             {"batch_id": 1, "stage": "frontend", "cached": False,
              "device_time_s": 0.005, "energy_j": 1e-4}),
        Span("compute", 1.1, 1.4, 2,
             {"batch_id": 1, "stage": "frontend", "wall_s": 0.3}),
    ]
    traces = []
    for request_id in (1, 2):
        trace = Trace(f"req-{request_id}", request_id=request_id, tank_id="tank-a")
        trace.add("admit", 0.9, 0.9)
        trace.add("queue", 0.9, 1.0)
        for span in shared:
            trace.spans.append(Span(span.name, span.t0_s, span.t1_s, span.depth, dict(span.attrs)))
        trace.add("respond", 1.5, 1.5, status="ok", latency_s=0.6)
        traces.append(trace)
    return traces


def test_stage_breakdown_dedupes_shared_batch_spans():
    breakdown = stage_breakdown(_grafted_pair())
    frontend = breakdown["stages"]["frontend"]
    # The grafted copies collapse to one batch observation...
    assert breakdown["batches"] == 1
    assert frontend["batches"] == 1
    assert frontend["compute"]["count"] == 1
    assert frontend["compute"]["mean_s"] == pytest.approx(0.3)
    assert frontend["reconfig"]["count"] == 1
    # ...while per-request facts aggregate over both requests.
    assert frontend["requests"] == 2
    assert breakdown["requests"]["statuses"] == {"ok": 2}
    assert breakdown["requests"]["latency"]["count"] == 2


def test_trace_report_renders_and_survives_empty_input():
    report = trace_report(_grafted_pair(), flame=True)
    assert "frontend" in report and "flamegraph" in report
    empty = trace_report([], flame=True)
    assert "no stage spans" in empty
    assert render_flamegraph([]) == "(no spans)"
    assert render_exemplars([]) == "(no traces)"
    assert stage_compute_means([]) == {}


def test_flamegraph_weighs_request_seconds_not_batches():
    flame = render_flamegraph(_grafted_pair())
    # Both grafted copies count: 2 x 0.5 s of execute over 2 x 0.6 s total.
    assert "execute" in flame
    line = next(l for l in flame.splitlines() if l.strip().startswith("execute"))
    assert "1000.00 ms" in line


def test_exemplars_skip_the_runtime_trace():
    runtime = Trace("runtime")
    runtime.add("artifact_build", 0.0, 99.0)  # spans the whole run
    listing = render_exemplars([runtime] + _grafted_pair(), top=2)
    assert "runtime" not in listing
    assert "req-1" in listing


# -------------------------------------------------------- service integration


def _run_traced_service(**kwargs):
    """Serve 8 requests over 2 tanks with tracing on; returns
    (request traces by id, all sink traces, metrics snapshot)."""
    sink = TraceSink(capacity=64, exemplars=4)
    tracer = Tracer(sink=sink)
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("max_batch", 4)
    kwargs.setdefault("batched", True)
    kwargs.setdefault("seed", 11)
    kwargs.setdefault("queue_capacity", 32)
    service = FleetService(tracer=tracer, **kwargs)
    requests = synthetic_load(8, n_tanks=2)
    accepted, rejected = service.submit_many(requests)
    assert not rejected
    service.start()
    assert service.await_responses(accepted, timeout_s=120)
    assert service.shutdown()
    snapshot = service.metrics_snapshot()
    tracer.close()
    traces = sink.traces()
    by_id = {t.request_id: t for t in traces if t.request_id is not None}
    assert len(by_id) == accepted
    return by_id, traces, snapshot


@pytest.fixture(scope="module")
def traced_scalar():
    return _run_traced_service(engine="scalar")


def _stable_structure(trace):
    return [list(pair) for pair in trace.structure() if pair[1] not in _UNSTABLE_SPANS]


def test_traced_service_structure_matches_golden_scalar(traced_scalar):
    by_id, _, _ = traced_scalar
    golden = json.loads(GOLDEN_PATH.read_text())
    assert {str(i) for i in by_id} == set(golden["scalar"])
    for request_id, trace in by_id.items():
        assert _stable_structure(trace) == golden["scalar"][str(request_id)], (
            f"span structure drifted for request {request_id}"
        )


def test_traced_service_structure_matches_golden_vector():
    by_id, _, _ = _run_traced_service(engine="vector")
    golden = json.loads(GOLDEN_PATH.read_text())
    assert {str(i) for i in by_id} == set(golden["vector"])
    for request_id, trace in by_id.items():
        assert _stable_structure(trace) == golden["vector"][str(request_id)], (
            f"span structure drifted for request {request_id}"
        )


def test_traced_service_structure_matches_golden_energy():
    """The energy policy's span structure — including its
    ``energy_decision`` span — is frozen the same way the scalar/vector
    structures are: a schedule change that adds, drops or reorders spans
    must be a conscious golden refresh, not an accident."""
    by_id, _, _ = _run_traced_service(policy="energy")
    golden = json.loads(ENERGY_GOLDEN_PATH.read_text())
    assert {str(i) for i in by_id} == set(golden["energy"])
    for request_id, trace in by_id.items():
        assert _stable_structure(trace) == golden["energy"][str(request_id)], (
            f"span structure drifted for request {request_id}"
        )


def test_energy_decision_span_predicts_the_measured_joules():
    """Every request batched by the energy policy carries one
    ``energy_decision`` span whose prediction must match the executor's
    measured per-request energy share exactly — the model mirrors the
    accounting, so any drift between the two is a bug in one of them."""
    by_id, _, snapshot = _run_traced_service(policy="energy")
    assert snapshot["counters"]["energy_decisions"] >= 1
    for request_id, trace in by_id.items():
        decisions = trace.find("energy_decision")
        assert len(decisions) == 1, f"request {request_id}"
        span = decisions[0]
        assert span.attrs["pipeline"] == list(
            ("frontend", "amp_phase", "capacity", "filter")
        )
        assert span.attrs["batch_size"] == 4
        assert span.attrs["target_batch"] == 4
        assert span.attrs["predicted_reconfig_j"] > 0.0
        respond = trace.find("respond")
        assert respond, f"request {request_id} has no respond span"
        assert span.attrs["predicted_j_per_request"] == pytest.approx(
            respond[0].attrs["energy_j"], rel=1e-9
        )


def test_traced_service_stage_spans_carry_cycles_and_energy(traced_scalar):
    by_id, _, _ = traced_scalar
    for trace in by_id.values():
        stage_spans = [s for s in trace.spans if s.name.startswith("stage:")]
        assert len(stage_spans) == 4
        for span in stage_spans:
            assert span.attrs["cycles"] > 0
            assert span.attrs["energy_j"] > 0.0
            assert span.attrs["requests"] >= 1
        for span in trace.find("reconfig"):
            assert span.attrs["device_time_s"] > 0.0
            assert isinstance(span.attrs["cached"], bool)
        (execute,) = trace.find("execute")
        assert execute.attrs["energy_j"] > 0.0
        assert execute.attrs["reconfigurations_avoided"] > 0
        (respond,) = trace.find("respond")
        assert respond.attrs["status"] == "ok"
        assert respond.attrs["latency_s"] > 0.0


def test_trace_differential_stage_means_match_metrics(traced_scalar):
    """The acceptance check: per-stage compute means reconstructed from
    deduplicated trace spans equal the runtime's stage_*_s histograms."""
    _, traces, snapshot = traced_scalar
    means = stage_compute_means(traces)
    observed = {
        name[len("stage_"):-len("_s")]: summary
        for name, summary in snapshot["histograms"].items()
        if name.startswith("stage_") and name.endswith("_s")
    }
    assert set(means) == set(observed) == {"frontend", "amp_phase", "capacity", "filter"}
    for stage, summary in observed.items():
        assert means[stage] == pytest.approx(summary["mean"], rel=1e-9), stage
        # And the span count agrees with the histogram's observation count.
        assert stage_breakdown(traces)["stages"][stage]["compute"]["count"] == summary["count"]


def test_vector_engine_emits_kernel_spans():
    by_id, _, _ = _run_traced_service(engine="vector")
    for trace in by_id.values():
        kernels = [s for s in trace.spans if s.name.startswith("kernel:")]
        assert {s.name for s in kernels} == {
            "kernel:frontend", "kernel:amp_phase", "kernel:capacity", "kernel:filter"
        }
        for span in kernels:
            assert span.depth == 3  # execute > stage:* > compute > kernel:*
            assert span.attrs["requests"] >= 1


def test_untraced_service_attaches_no_traces():
    service = FleetService(workers=1, max_batch=4, batched=True, queue_capacity=16)
    requests = synthetic_load(4, n_tanks=2)
    accepted, _ = service.submit_many(requests)
    service.start()
    assert service.await_responses(accepted, timeout_s=120)
    assert service.shutdown()
    assert all(r.trace is None for r in requests)
    assert NULL_TRACER.sink.finished == 0
    assert "trace" not in service.metrics_snapshot()


def test_retry_trace_shows_backoff_and_second_execute():
    by_id, _, _ = _run_traced_service(fault_rate=1.0, seed=7)
    for trace in by_id.values():
        (respond,) = trace.find("respond")
        assert respond.attrs["status"] == "ok"
        assert respond.attrs["attempts"] == 2
        # First attempt faulted: scrub happened, a retry_wait recorded the
        # backoff, the request queued twice and executed twice.
        assert len(trace.find("retry_wait")) == 1
        assert len(trace.find("queue")) == 2
        assert len(trace.find("execute")) == 2
        assert trace.find("seu_scrub")
        retry_wait = trace.find("retry_wait")[0]
        assert retry_wait.attrs["delay_s"] > 0.0
        queue_retry = trace.find("queue")[1]
        assert queue_retry.attrs["retry"] is True


def test_expired_request_trace_has_no_device_work():
    sink = TraceSink()
    tracer = Tracer(sink=sink)
    service = FleetService(workers=1, batched=True, queue_capacity=8, tracer=tracer)
    service.submit(
        MeasurementRequest(
            request_id=1, tank_id="tank-x", level=0.5, deadline_s=service.clock() - 1.0
        )
    )
    service.start()
    assert service.await_responses(1, timeout_s=60)
    assert service.shutdown()
    tracer.close()
    (trace,) = [t for t in sink.traces() if t.request_id == 1]
    (respond,) = trace.find("respond")
    assert respond.attrs["status"] == "expired"
    assert not trace.find("execute")  # no batch segment grafted
    assert not trace.find("reconfig")
    assert trace.find("admit") and trace.find("queue")


def test_runtime_trace_captures_construction_artifact_builds(traced_scalar):
    _, traces, snapshot = traced_scalar
    (runtime,) = [t for t in traces if t.trace_id == "runtime"]
    builds = runtime.find("artifact_build")
    assert builds, "bitstream builds during construction should be traced"
    assert all(s.attrs["kind"] == "bitstream" for s in builds)
    assert snapshot["trace"]["enabled"] is True
    assert snapshot["trace"]["finished"] >= 8


# ------------------------------------------------------------------------ CLI


def test_cli_serve_bench_trace_then_report(tmp_path, capsys):
    from repro.cli import main

    trace_path = tmp_path / "traces.jsonl"
    rc = main(
        [
            "serve-bench", "--requests", "4", "--tanks", "2", "--workers", "1",
            "--max-batch", "4", "--batched-only", "--trace", str(trace_path),
        ]
    )
    assert rc == 0
    assert trace_path.exists()
    capsys.readouterr()

    rc = main(["trace-report", str(trace_path), "--flame", "--top", "3"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "frontend" in out and "flamegraph" in out and "slow exemplars" in out

    assert main(["trace-report", str(tmp_path / "absent.jsonl")]) == 2

    broken = tmp_path / "broken.jsonl"
    broken.write_text("{nope\n")
    assert main(["trace-report", str(broken)]) == 2
