"""Tests of the vectorized batch kernels (repro.kernels) and the
``engine="vector"`` serving path.

The contract under test is strict: every kernel must be *bit-identical*
to the scalar path it replaces, not merely close — the verifylab oracle
compares the two engines at tolerance 1e-9 and the fixed-point
quantization would surface any last-ulp drift.
"""

import numpy as np
import pytest

from repro.app import dsp
from repro.app.modules import standard_modules
from repro.app.tank import MeasurementCircuit
from repro.ip.delta_sigma import DeltaSigmaAdc
from repro.kernels import (
    adc_chain_batch,
    batch_amp_phase,
    batch_capacity,
    batch_filter_update,
    batch_goertzel,
    batch_sample_cycles,
    native_status,
)
from repro.kernels.cache import ArtifactCache
from repro.kernels.dsp_kernels import goertzel_fast_path
from repro.kernels.native import DISABLE_ENV, _adc_chain_python, native_available
from repro.serve import ENGINES, FleetService, synthetic_load
from repro.serve.batching import BatchExecutor, FaultInjector, TankStateStore

CIRCUIT = MeasurementCircuit()
TONE = 500_000.0
RATE = 4_000_000.0


def tones(b, n, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n) / RATE
    return np.stack(
        [
            np.sin(2 * np.pi * TONE * t + rng.uniform(0, 2 * np.pi))
            + 0.01 * rng.normal(size=n)
            for _ in range(b)
        ]
    )


# ------------------------------------------------------ reference goertzel


def test_goertzel_dot_matches_recursive():
    """The closed-form dot-product Goertzel agrees with the classic
    recursive form to near machine precision."""
    for row in tones(4, 512, seed=3):
        direct = dsp.goertzel(row, TONE, RATE)
        recursive = dsp.goertzel_recursive(row, TONE, RATE)
        assert abs(direct - recursive) <= 1e-12 * max(1.0, abs(direct))


def test_goertzel_recursive_validations_match():
    with pytest.raises(ValueError):
        dsp.goertzel_recursive(np.array([]), TONE, RATE)
    with pytest.raises(ValueError):
        dsp.goertzel_recursive(np.ones(8), TONE, 0.0)


# --------------------------------------------------------- batch_goertzel


def test_batch_goertzel_empty_batch():
    out = batch_goertzel(np.empty((0, 64)), TONE, RATE)
    assert out.shape == (0,) and out.dtype == np.complex128


def test_batch_goertzel_single_lane_bit_equal():
    row = tones(1, 512)[0]
    out = batch_goertzel(row[None, :], TONE, RATE, cache=ArtifactCache(4))
    assert out[0] == dsp.goertzel(row, TONE, RATE)  # exact, not approx


def test_batch_goertzel_many_lanes_bit_equal():
    blocks = tones(5, 256, seed=9)
    out = batch_goertzel(blocks, TONE, RATE, cache=ArtifactCache(4))
    for i in range(5):
        assert out[i] == dsp.goertzel(blocks[i], TONE, RATE)


def test_batch_goertzel_guards():
    with pytest.raises(ValueError):
        batch_goertzel(np.ones(8), TONE, RATE)  # 1-D
    with pytest.raises(ValueError):
        batch_goertzel(np.empty((2, 0)), TONE, RATE)  # empty rows
    with pytest.raises(ValueError):
        batch_goertzel(np.ones((2, 8)), TONE, 0.0)  # bad rate
    bad = np.ones((2, 8))
    bad[1, 3] = np.nan
    with pytest.raises(ValueError):
        batch_goertzel(bad, TONE, RATE)


def test_batch_goertzel_validates_before_empty_return():
    """A degenerate configuration raises even when no request is in
    flight — validation precedes the empty-batch early return."""
    with pytest.raises(ValueError, match="empty input"):
        batch_goertzel(np.empty((0, 0)), TONE, RATE)
    with pytest.raises(ValueError, match="sample rate"):
        batch_goertzel(np.empty((0, 8)), TONE, -1.0)
    out = batch_goertzel(np.empty((0, 8)), TONE, RATE)
    assert out.shape == (0,) and out.dtype == np.complex128


def test_goertzel_fast_path_probe_is_cached_and_valid():
    path = goertzel_fast_path(refresh=True)
    assert path in ("matmul", "native", "scalar")
    assert goertzel_fast_path() == path  # cached, no re-probe


def test_goertzel_fast_path_scalar_when_native_disabled(monkeypatch):
    monkeypatch.setenv(DISABLE_ENV, "1")
    path = goertzel_fast_path(refresh=True)
    assert path in ("matmul", "scalar")  # native cannot win without the lib
    monkeypatch.delenv(DISABLE_ENV)
    goertzel_fast_path(refresh=True)  # restore the real probe result


def test_batch_goertzel_bit_equal_whatever_the_path():
    """Whichever projection the probe picked on this platform, the kernel
    stays bit-identical to the scalar reference."""
    for b, n in ((1, 64), (3, 480), (7, 512)):
        blocks = tones(b, n, seed=b)
        out = batch_goertzel(blocks, TONE, RATE, cache=ArtifactCache(4))
        for i in range(b):
            assert out[i] == dsp.goertzel(blocks[i], TONE, RATE)


# -------------------------------------------------------- batch_amp_phase


def test_batch_amp_phase_matches_scalar_module():
    modules = standard_modules(CIRCUIT, TONE)
    meas, ref = tones(3, 512, seed=1), tones(3, 512, seed=2)
    out = batch_amp_phase(meas, ref, RATE, TONE, cache=ArtifactCache(4))
    for i in range(3):
        scalar = modules["amp_phase"].behavior(meas[i], ref[i], RATE, TONE)
        assert out[i] == scalar  # tuple equality, bit for bit


def test_batch_amp_phase_size_mismatch():
    with pytest.raises(ValueError, match="differ in size"):
        batch_amp_phase(tones(2, 64), tones(3, 64), RATE, TONE)


# --------------------------------------------------------- batch_capacity


def scalar_phasors(level, seed=0):
    """Realistic quantised phasors via the scalar frontend + module."""
    store = TankStateStore(circuit=CIRCUIT, seed=seed)
    session = store.session("tank-x")
    modules = standard_modules(CIRCUIT, session.frontend.tone_hz)
    cycle = session.frontend.sample_cycle(level, 512)
    return (
        modules,
        modules["amp_phase"].behavior(
            cycle.meas, cycle.ref, cycle.sample_rate_hz, cycle.tone_hz
        ),
    )


def test_batch_capacity_empty():
    out = batch_capacity([], CIRCUIT, TONE)
    assert out.shape == (0,)


def test_batch_capacity_matches_scalar_module():
    modules, p1 = scalar_phasors(0.3)
    _, p2 = scalar_phasors(0.8, seed=4)
    out = batch_capacity([p1, p2], CIRCUIT, TONE)
    assert out[0] == modules["capacity"].behavior(*p1)
    assert out[1] == modules["capacity"].behavior(*p2)


def test_batch_capacity_guards():
    with pytest.raises(ValueError, match="amplitude is zero"):
        batch_capacity([(1.0, 0.1, 0.0, 0.0)], CIRCUIT, TONE)
    with pytest.raises(ValueError, match="non-finite"):
        batch_capacity([(np.nan, 0.0, 1.0, 0.0)], CIRCUIT, TONE)
    with pytest.raises(ValueError, match=r"\(B, 4\)"):
        batch_capacity([(1.0, 0.0, 1.0)], CIRCUIT, TONE)


# ---------------------------------------------------- batch_filter_update


def test_batch_filter_empty():
    levels, states = batch_filter_update(
        np.empty(0), [], {"a": 0.5}, CIRCUIT
    )
    assert levels.size == 0 and states == {"a": 0.5}


def test_batch_filter_single_lane_matches_scalar():
    modules = standard_modules(CIRCUIT, TONE)
    c = 150.0
    levels, states = batch_filter_update(np.array([c]), ["a"], {}, CIRCUIT)
    want_level, want_state = modules["filter"].behavior(c, None)
    assert levels[0] == want_level
    assert states["a"] == want_state


def test_batch_filter_mixed_tanks_chain_in_lane_order():
    """Lanes of the same tank chain through the filter exactly as the
    scalar module would process them sequentially."""
    modules = standard_modules(CIRCUIT, TONE)
    c_pf = np.array([150.0, 210.0, 180.0, 165.0, 230.0])
    keys = ["a", "b", "a", "a", "b"]
    initial = {"a": None, "b": 0.4}
    levels, states = batch_filter_update(c_pf, keys, dict(initial), CIRCUIT)

    scalar_states = dict(initial)
    for i, (c, key) in enumerate(zip(c_pf, keys)):
        level, scalar_states[key] = modules["filter"].behavior(
            float(c), scalar_states[key]
        )
        assert levels[i] == level, i
    assert states == scalar_states


def test_batch_filter_does_not_mutate_input_states():
    states = {"a": 0.25}
    batch_filter_update(np.array([170.0]), ["a"], states, CIRCUIT)
    assert states == {"a": 0.25}


def test_batch_filter_guards():
    with pytest.raises(ValueError, match="alpha"):
        batch_filter_update(np.array([150.0]), ["a"], {}, CIRCUIT, alpha=0.0)
    with pytest.raises(ValueError, match="non-finite"):
        batch_filter_update(np.array([np.nan]), ["a"], {}, CIRCUIT)
    with pytest.raises(ValueError, match="tank keys"):
        batch_filter_update(np.array([150.0, 160.0]), ["a"], {}, CIRCUIT)
    with pytest.raises(ValueError, match="1-D"):
        batch_filter_update(np.ones((2, 2)), ["a"], {}, CIRCUIT)


def test_batch_filter_fused_native_matches_python_rounds(monkeypatch):
    """The fused C chain (linearise + IIR + quantise in one pass) is
    bit-identical to the numpy rounds path over randomized mixed-tank
    batches, including the states dict it hands back."""
    if not native_available():
        pytest.skip(f"no native kernel: {native_status()}")
    rng = np.random.default_rng(0xF1)
    pool = ["a", "b", "c", "d"]
    span = CIRCUIT.tank.c_full_pf - CIRCUIT.tank.c_empty_pf
    for _trial in range(40):
        n = int(rng.integers(1, 13))
        keys = [pool[int(k)] for k in rng.integers(0, len(pool), n)]
        c = CIRCUIT.tank.c_empty_pf + span * rng.uniform(-0.2, 1.2, n)
        states = {
            k: (None if rng.random() < 0.4 else float(rng.random())) for k in pool
        }
        fused_out, fused_states = batch_filter_update(c, keys, dict(states), CIRCUIT)
        with monkeypatch.context() as m:
            m.setenv(DISABLE_ENV, "1")
            py_out, py_states = batch_filter_update(c, keys, dict(states), CIRCUIT)
        np.testing.assert_array_equal(fused_out, py_out)
        assert fused_states == py_states


def test_batch_filter_fused_chain_matches_scalar_module():
    """Long same-tank chains exercise the C kernel's sequential state
    update; every lane must match the scalar module run in order."""
    modules = standard_modules(CIRCUIT, TONE)
    c_pf = np.linspace(150.0, 420.0, 17)
    keys = ["t"] * 17
    levels, states = batch_filter_update(c_pf, keys, {}, CIRCUIT)
    state = None
    for i, c in enumerate(c_pf):
        level, state = modules["filter"].behavior(float(c), state)
        assert levels[i] == level, i
    assert states["t"] == state


# ----------------------------------------------------------- adc kernels


def adc_reference(lanes):
    """Scalar DeltaSigmaAdc.convert per lane (the ground truth)."""
    adc = DeltaSigmaAdc()
    return np.stack([adc.convert(lane) for lane in lanes])


def test_adc_chain_python_fallback_bit_exact(monkeypatch):
    monkeypatch.setenv(DISABLE_ENV, "1")
    adc = DeltaSigmaAdc()
    lanes = tones(3, 2048, seed=7)
    out = adc_chain_batch(
        lanes, adc.antialias.alpha, adc.antialias.order, adc.decimation
    )
    np.testing.assert_array_equal(out, adc_reference(lanes))
    assert "disabled" in native_status()


def test_adc_chain_native_bit_exact_when_available():
    if not native_available():
        pytest.skip(f"no native kernel: {native_status()}")
    adc = DeltaSigmaAdc()
    lanes = tones(4, 2048, seed=8)
    out = adc_chain_batch(
        lanes, adc.antialias.alpha, adc.antialias.order, adc.decimation
    )
    np.testing.assert_array_equal(out, adc_reference(lanes))
    # And the two fallback tiers agree with each other.
    py = np.stack(
        [
            _adc_chain_python(
                lane, adc.antialias.alpha, adc.antialias.order, adc.decimation, 0.9
            )
            for lane in lanes
        ]
    )
    np.testing.assert_array_equal(out, py)


def test_adc_chain_guards():
    with pytest.raises(ValueError, match="2-D"):
        adc_chain_batch(np.ones(16), 0.1, 2, 4)
    with pytest.raises(ValueError, match="order"):
        adc_chain_batch(np.ones((1, 16)), 0.1, 9, 4)
    with pytest.raises(ValueError, match="decimation"):
        adc_chain_batch(np.ones((1, 16)), 0.1, 2, 1)
    assert adc_chain_batch(np.empty((0, 16)), 0.1, 2, 4).shape == (0, 4)


# ----------------------------------------------------- batched frontend


def test_batch_sample_cycles_bit_exact_with_scalar():
    """Mixed tanks, a repeated tank (two RNG draws from one generator),
    noise on: the batch must replay the scalar path exactly."""
    entries_spec = [("a", 0.3), ("b", 0.7), ("a", 0.35), ("c", 0.5)]

    scalar_store = TankStateStore(circuit=CIRCUIT, seed=11)
    expected = [
        scalar_store.session(t).frontend.sample_cycle(lv, 512)
        for t, lv in entries_spec
    ]

    vector_store = TankStateStore(circuit=CIRCUIT, seed=11)
    entries = [(vector_store.session(t), lv) for t, lv in entries_spec]
    got = batch_sample_cycles(entries, 512, cache=ArtifactCache(16))

    for want, have in zip(expected, got):
        np.testing.assert_array_equal(have.meas, want.meas)
        np.testing.assert_array_equal(have.ref, want.ref)
        assert have.sample_rate_hz == want.sample_rate_hz
        assert have.tone_hz == want.tone_hz


def test_batch_sample_cycles_zero_noise_and_empty():
    assert batch_sample_cycles([], 512) == []
    scalar_store = TankStateStore(circuit=CIRCUIT, seed=2, noise_rms=0.0)
    want = scalar_store.session("a").frontend.sample_cycle(0.6, 512)
    vector_store = TankStateStore(circuit=CIRCUIT, seed=2, noise_rms=0.0)
    (have,) = batch_sample_cycles(
        [(vector_store.session("a"), 0.6)], 512, cache=ArtifactCache(16)
    )
    np.testing.assert_array_equal(have.meas, want.meas)
    np.testing.assert_array_equal(have.ref, want.ref)


# --------------------------------------------------- engine integration


def run_service(requests, **kwargs):
    kwargs.setdefault("queue_capacity", len(requests) + 8)
    service = FleetService(**kwargs).start()
    accepted, rejected = service.submit_many(requests)
    assert not rejected
    assert service.await_responses(accepted, timeout_s=120)
    assert service.shutdown()
    return service


def by_id(service):
    return {r.request_id: r for r in service.responses()}


def test_vector_engine_equals_scalar_engine():
    """The whole point: same seeds, same answers, to the bit."""
    scalar = run_service(
        synthetic_load(10, n_tanks=3), workers=1, max_batch=8, seed=7
    )
    vector = run_service(
        synthetic_load(10, n_tanks=3),
        workers=1,
        max_batch=8,
        seed=7,
        engine="vector",
    )
    s, v = by_id(scalar), by_id(vector)
    assert set(s) == set(v)
    for request_id in s:
        assert s[request_id].ok and v[request_id].ok
        assert v[request_id].level_measured == s[request_id].level_measured
        assert v[request_id].capacitance_pf == s[request_id].capacitance_pf


def test_vector_engine_preserves_fault_semantics():
    """Fault-injected requests fall back to the scalar path: both engines
    see identical fault schedules, retries and final answers."""
    results = {}
    for engine in ENGINES:
        service = run_service(
            synthetic_load(12, n_tanks=3),
            workers=1,
            max_batch=6,
            seed=9,
            engine=engine,
            fault_injector=FaultInjector(0.4, seed=3),
        )
        results[engine] = service
    s, v = by_id(results["scalar"]), by_id(results["vector"])
    assert set(s) == set(v)
    for request_id in s:
        assert v[request_id].status == s[request_id].status
        assert v[request_id].attempts == s[request_id].attempts
        assert v[request_id].level_measured == s[request_id].level_measured
    assert results["vector"].metrics.counter("faults_injected") == results[
        "scalar"
    ].metrics.counter("faults_injected")
    assert results["vector"].metrics.counter("requests_retried") == results[
        "scalar"
    ].metrics.counter("requests_retried")


def test_engine_validation():
    service = FleetService(workers=1)
    executor = service.workers[0].executor
    with pytest.raises(ValueError, match="engine must be one of"):
        BatchExecutor(executor.system, service.tanks, engine="simd")
    with pytest.raises(ValueError, match="stage_major"):
        BatchExecutor(
            executor.system, service.tanks, stage_major=False, engine="vector"
        )
    with pytest.raises(ValueError, match="engine must be one of"):
        FleetService(workers=1, engine="simd")


def test_snapshot_reports_engine_stage_times_and_kernel_cache():
    service = run_service(
        synthetic_load(6, n_tanks=2), workers=1, max_batch=4, engine="vector"
    )
    snap = service.metrics_snapshot()
    assert snap["service"]["engine"] == "vector"
    assert "kernel_cache" in snap
    for stage in ("frontend", "amp_phase", "capacity", "filter"):
        hist = snap["histograms"][f"stage_{stage}_s"]
        assert hist["count"] > 0
        assert hist["p50"] >= 0.0

    scalar = run_service(synthetic_load(4, n_tanks=2), workers=1, max_batch=4)
    snap = scalar.metrics_snapshot()
    assert snap["service"]["engine"] == "scalar"
    assert "kernel_cache" not in snap
    assert snap["histograms"]["stage_frontend_s"]["count"] > 0


def test_per_request_mode_also_times_stages():
    service = run_service(
        synthetic_load(4, n_tanks=2), workers=1, max_batch=4, batched=False
    )
    snap = service.metrics_snapshot()
    for stage in ("frontend", "amp_phase", "capacity", "filter"):
        assert snap["histograms"][f"stage_{stage}_s"]["count"] > 0


def test_counter_mode_sweeps_keep_engines_identical():
    """Counter-mode injection keeps faulted requests *in* the batch: both
    engines retry via vectorizable sweeps, produce bit-identical results,
    and never touch the broker's requeue path."""
    results = {}
    for engine in ENGINES:
        results[engine] = run_service(
            synthetic_load(12, n_tanks=3),
            workers=1,
            max_batch=6,
            seed=9,
            engine=engine,
            fault_injector=FaultInjector(
                0.4, seed=3, retry_rate=0.2, mode="counter"
            ),
        )
    s, v = by_id(results["scalar"]), by_id(results["vector"])
    assert set(s) == set(v)
    for request_id in s:
        assert v[request_id].status == s[request_id].status
        assert v[request_id].attempts == s[request_id].attempts
        assert v[request_id].level_measured == s[request_id].level_measured
        assert v[request_id].capacitance_pf == s[request_id].capacitance_pf
    for service in results.values():
        # Every retry happened inside its batch — none via the broker.
        assert service.metrics.counter("retries_in_batch") > 0
        assert service.metrics.counter("retries_in_batch") == service.metrics.counter(
            "requests_retried"
        )
    assert results["vector"].metrics.counter("faults_injected") == results[
        "scalar"
    ].metrics.counter("faults_injected")


def test_blocking_workers_do_not_spin():
    """Satellite 1: with the condition-variable default, idle workers wake
    only on work arrival or shutdown — not thousands of empty polls."""
    service = run_service(
        synthetic_load(8, n_tanks=2), workers=2, max_batch=4, seed=1
    )
    # Each worker may see a handful of spurious wakeups (batch races,
    # close notification) but nothing like a poll loop's idle churn.
    assert service.metrics.counter("worker_idle_wakeups") <= 16
