"""Tests for the System-Generator substitute (dataflow compiler)."""

import pytest

from repro.sysgen.compile import compile_graph, split_into_modules
from repro.sysgen.graph import DataflowGraph
from repro.sysgen.ops import OP_KINDS, op_cost


class TestOpCosts:
    def test_all_kinds_computable(self):
        for kind in OP_KINDS:
            spec = op_cost(kind, 16)
            assert spec.slices >= 0
            assert spec.fmax_mhz > 0

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown operator"):
            op_cost("fft", 16)

    def test_width_validation(self):
        with pytest.raises(ValueError):
            op_cost("add", 0)
        with pytest.raises(ValueError):
            op_cost("add", 100)

    def test_mult18_vs_lut_multiplier(self):
        hard = op_cost("mul", 18)
        soft = op_cost("mul", 18, use_mult18=False)
        assert hard.multipliers == 1 and hard.slices < 10
        assert soft.multipliers == 0 and soft.slices > 50

    def test_cordic_scales_with_width(self):
        assert op_cost("cordic_magphase", 24).slices > op_cost("cordic_magphase", 16).slices

    def test_rom_distributed_vs_bram(self):
        small = op_cost("rom", 8, depth=64)
        big = op_cost("rom", 16, depth=2048)
        assert small.brams == 0
        assert big.brams >= 1
        assert big.slices < small.slices + 80

    def test_divider_latency(self):
        assert op_cost("div", 24).latency_cycles == 26


class TestGraph:
    def _simple(self):
        g = DataflowGraph("g")
        g.node("in", "input", 16)
        g.node("m", "mul", 16)
        g.node("a", "add", 16)
        g.node("out", "output", 16)
        g.chain("in", "m", "a", "out")
        return g

    def test_topological_order(self):
        g = self._simple()
        order = g.topological_order()
        assert order.index("in") < order.index("m") < order.index("out")

    def test_cycle_rejected(self):
        g = self._simple()
        with pytest.raises(ValueError, match="cycle"):
            g.connect("out", "in")

    def test_duplicate_node_rejected(self):
        g = self._simple()
        with pytest.raises(ValueError, match="duplicate"):
            g.node("m", "add", 16)

    def test_unknown_endpoint_rejected(self):
        g = self._simple()
        with pytest.raises(ValueError, match="unknown"):
            g.connect("in", "ghost")

    def test_critical_latency(self):
        g = self._simple()
        # mul(3) + add(1); input/output are latency 0.
        assert g.critical_latency_cycles() == 4


class TestCompile:
    def test_aggregation(self):
        g = DataflowGraph("g")
        g.node("in", "input", 16)
        g.node("m1", "mul", 16)
        g.node("m2", "mul", 16)
        g.node("out", "output", 16)
        g.chain("in", "m1", "m2", "out")
        m = compile_graph(g)
        assert m.multipliers == 2
        assert m.slices == op_cost("input", 16).slices + 8 + op_cost("output", 16).slices
        assert m.fmax_mhz == 90.0  # the MULT18 path limits

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            compile_graph(DataflowGraph("empty"))

    def test_processing_time(self):
        g = DataflowGraph("g")
        g.node("in", "input", 16)
        g.node("m", "mac", 16)
        g.node("out", "output", 16)
        g.chain("in", "m", "out")
        module = compile_graph(g)
        t = module.processing_time_us(512, 50.0)
        assert t == pytest.approx((512 + module.latency_cycles) / 50.0)

    def test_overclock_rejected(self):
        g = DataflowGraph("g")
        g.node("d", "div", 24)
        module = compile_graph(g)
        with pytest.raises(ValueError, match="exceeds"):
            module.processing_time_us(512, module.fmax_mhz + 10)

    def test_netlist_sized_to_footprint(self):
        g = DataflowGraph("g")
        g.node("in", "input", 16)
        g.node("c", "cordic_magphase", 16)
        g.node("out", "output", 16)
        g.chain("in", "c", "out")
        module = compile_graph(g)
        assert module.netlist().stats().slices == module.slices


class TestSplit:
    def _big(self):
        g = DataflowGraph("big")
        prev = None
        for i in range(12):
            kind = "cordic_magphase" if i % 4 == 2 else "add"
            g.node(f"n{i}", kind, 16)
            if prev:
                g.connect(prev, f"n{i}")
            prev = f"n{i}"
        return g

    def test_split_preserves_total_slices(self):
        g = self._big()
        whole = compile_graph(g)
        parts = split_into_modules(g, 3)
        assert sum(p.slices for p in parts) == whole.slices
        assert len(parts) == 3

    def test_split_balances(self):
        g = self._big()
        parts = split_into_modules(g, 3)
        sizes = [p.slices for p in parts]
        # No part more than ~1.7x the ideal share.
        ideal = sum(sizes) / 3
        assert max(sizes) < 1.7 * ideal

    def test_more_parts_smaller_max(self):
        g = self._big()
        max2 = max(p.slices for p in split_into_modules(g, 2))
        max4 = max(p.slices for p in split_into_modules(g, 4))
        assert max4 <= max2

    def test_cut_edges_become_interface(self):
        g = DataflowGraph("g")
        g.node("a", "add", 16)
        g.node("b", "add", 16)
        g.connect("a", "b")
        parts = split_into_modules(g, 2)
        # The a->b edge is cut: both parts carry it as interface signals.
        assert all(p.interface_nets >= 4 for p in parts)

    def test_bad_count(self):
        g = self._big()
        with pytest.raises(ValueError):
            split_into_modules(g, 0)
        with pytest.raises(ValueError):
            split_into_modules(g, 13)
