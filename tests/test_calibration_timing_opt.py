"""Tests for measurement calibration and the timing-constrained power
optimizer."""

import numpy as np
import pytest

from repro.app.calibration import (
    CalibrationPoint,
    CalibrationTable,
    calibrate,
    calibrated_level,
)
from repro.app.frontend import AnalogFrontEnd
from repro.fabric.device import get_device
from repro.netlist.generate import random_netlist
from repro.par.design import Design
from repro.par.placer import PlacerOptions, place
from repro.par.power_opt import optimize_nets
from repro.par.router import route


class TestCalibrationTable:
    def test_interpolation(self):
        table = CalibrationTable(
            [CalibrationPoint(100.0, 110.0), CalibrationPoint(200.0, 190.0)]
        )
        assert table.apply(100.0) == pytest.approx(110.0)
        assert table.apply(150.0) == pytest.approx(150.0)
        assert table.apply(200.0) == pytest.approx(190.0)

    def test_extrapolation(self):
        table = CalibrationTable(
            [CalibrationPoint(100.0, 100.0), CalibrationPoint(200.0, 210.0)]
        )
        assert table.apply(300.0) == pytest.approx(320.0)
        assert table.apply(0.0) == pytest.approx(-10.0)

    def test_residual_zero_at_points(self):
        table = CalibrationTable(
            [CalibrationPoint(r, r * 1.1) for r in (50.0, 150.0, 400.0)]
        )
        assert table.max_residual_pf() == pytest.approx(0.0, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError, match="2 calibration points"):
            CalibrationTable([CalibrationPoint(1.0, 1.0)])
        with pytest.raises(ValueError, match="distinct"):
            CalibrationTable([CalibrationPoint(1.0, 1.0), CalibrationPoint(1.0, 2.0)])

    def test_rom_contents(self):
        table = CalibrationTable(
            [CalibrationPoint(100.0, 100.0), CalibrationPoint(200.0, 200.0)]
        )
        words = table.rom_contents(16, 100.0, 200.0, frac_bits=4)
        assert len(words) == 16
        assert words[0] == 100 * 16
        assert words[-1] == 200 * 16
        with pytest.raises(ValueError):
            table.rom_contents(1, 100.0, 200.0)


class TestCalibrationFlow:
    def test_calibration_reduces_error(self):
        """Calibration cancels the chain's systematic bias: the corrected
        readings beat the raw ones on average over a level sweep."""
        frontend = AnalogFrontEnd(seed=21)
        table = calibrate(frontend, levels=(0.1, 0.3, 0.5, 0.7, 0.9), repeats=2)
        raw_errors = []
        cal_errors = []
        for level in (0.2, 0.4, 0.6, 0.8):
            raw, corrected = calibrated_level(frontend, table, level)
            raw_errors.append(abs(raw - level))
            cal_errors.append(abs(corrected - level))
        assert np.mean(cal_errors) < np.mean(raw_errors) + 1e-6
        # Noise on individual readings bounds what calibration can do.
        assert max(cal_errors) < 0.06

    def test_calibrate_validation(self):
        frontend = AnalogFrontEnd(seed=1)
        with pytest.raises(ValueError):
            calibrate(frontend, levels=(0.5,))


class TestTimingConstrainedOptimization:
    @pytest.fixture
    def design(self):
        dev = get_device("XC3S200")
        nl = random_netlist("tc", 100, seed=13)
        placement = place(nl, dev, options=PlacerOptions(steps=12, seed=5))
        routing = route(nl, placement, dev)
        return Design(nl, dev, placement=placement, routed_nets=routing.nets, graph=routing.graph)

    def test_constraint_respected(self, design):
        budget_ns = 2.0
        result = optimize_nets(design, clock_mhz=50.0, top_n=8, max_net_delay_ns=budget_ns)
        # Every net the optimizer touched still meets the bound.
        for record in result.records:
            if record.accepted:
                routed = design.routed_nets[record.net]
                assert routed.delay_ns() <= budget_ns + 1e-9

    def test_tight_constraint_blocks_more_moves(self):
        def run(budget):
            dev = get_device("XC3S200")
            nl = random_netlist("tc", 100, seed=13)
            placement = place(nl, dev, options=PlacerOptions(steps=12, seed=5))
            routing = route(nl, placement, dev)
            design = Design(nl, dev, placement=placement, routed_nets=routing.nets, graph=routing.graph)
            return optimize_nets(design, clock_mhz=50.0, top_n=8, max_net_delay_ns=budget)

        loose = run(None)
        tight = run(0.3)  # barely one direct hop
        assert tight.accepted_count <= loose.accepted_count
        assert tight.routing_power_after_w >= loose.routing_power_after_w - 1e-12
