"""Tests for difference-based reconfiguration."""

import pytest

from repro.fabric.bitstream import Bitstream, BitstreamGenerator
from repro.fabric.device import get_device
from repro.fabric.grid import Grid
from repro.reconfig.diffload import diff_bitstream, diff_load_time_s, tweak_frames
from repro.reconfig.ports import Jcap


@pytest.fixture
def base():
    dev = get_device("XC3S400")
    gen = BitstreamGenerator(dev)
    return gen.partial_for_region(Grid(dev).column_region(8, 18), "amp_phase")


class TestDiff:
    def test_identical_bitstreams_empty_diff(self, base):
        result = diff_bitstream(base, base)
        assert result.frames_changed == 0
        assert result.reduction == 1.0

    def test_small_tweak_small_diff(self, base):
        tweaked = tweak_frames(base, [3, 40, 100])
        result = diff_bitstream(base, tweaked)
        assert result.frames_changed == 3
        assert result.reduction > 0.95
        # The diff carries exactly the changed frames' addresses.
        changed_addresses = {f.address for f in result.bitstream.frames}
        assert changed_addresses == {
            base.frames[i].address for i in (3, 40, 100)
        }

    def test_diff_applies_to_correct_content(self, base):
        tweaked = tweak_frames(base, [7])
        result = diff_bitstream(base, tweaked)
        [frame] = result.bitstream.frames
        assert frame.words == tweaked.frames[7].words
        assert frame.words != base.frames[7].words

    def test_disjoint_regions_rejected(self, base):
        dev = get_device("XC3S400")
        other = BitstreamGenerator(dev).partial_for_region(
            Grid(dev).column_region(0, 5), "filter"
        )
        with pytest.raises(ValueError, match="frame coverage"):
            diff_bitstream(base, other)

    def test_fully_different_modules_no_savings(self, base):
        dev = get_device("XC3S400")
        other = BitstreamGenerator(dev).partial_for_region(
            Grid(dev).column_region(8, 18), "capacity"
        )
        result = diff_bitstream(base, other)
        assert result.reduction == pytest.approx(0.0, abs=0.02)

    def test_tweak_validation(self, base):
        with pytest.raises(ValueError, match="outside"):
            tweak_frames(base, [10_000])

    def test_diff_bitstream_still_parses(self, base):
        tweaked = tweak_frames(base, [1, 2])
        result = diff_bitstream(base, tweaked)
        back = Bitstream.from_bytes(result.bitstream.to_bytes())
        assert back.frame_count == 2


class TestDiffTiming:
    def test_adaptation_tweak_fits_easily_over_jcap(self, base):
        """A coefficient tweak (3 frames) loads ~70x faster than a full
        module swap — 'fast run-time adaptation' even over the slow JCAP."""
        tweaked = tweak_frames(base, [3, 40, 100])
        full, diff = diff_load_time_s(base, tweaked, Jcap().bytes_per_second)
        assert diff < full / 50
        assert diff < 0.002  # sub-2ms over JCAP

    def test_identical_is_free(self, base):
        full, diff = diff_load_time_s(base, base, 1e6)
        assert diff == 0.0
        assert full > 0

    def test_bandwidth_validation(self, base):
        with pytest.raises(ValueError):
            diff_load_time_s(base, base, 0.0)
