"""Quality checks and edge cases across the stack: router optimality
bounds, placer modes, scheduler arithmetic, softcore corner cases, CLI
paths, power-report internals."""

import pytest

from repro.cli import main as cli_main
from repro.fabric.device import get_device
from repro.fabric.grid import SliceCoord
from repro.netlist.cells import SLICE_REG
from repro.netlist.generate import chain_netlist, random_netlist
from repro.netlist.netlist import Netlist
from repro.par.placer import Placement, PlacerOptions, net_hpwl, place
from repro.par.router import RouterOptions, route, route_single_net
from repro.fabric.routing import RoutingGraph
from repro.reconfig.scheduler import CycleSchedule
from repro.softcore.asm import assemble
from repro.softcore.cpu import Cpu, CpuError, MemoryMap, MemoryRegion


class TestRouterQuality:
    def test_wirelength_close_to_hpwl_bound(self):
        """Routed wirelength must stay near the HPWL lower bound on an
        uncongested device (sanity check on router quality)."""
        dev = get_device("XC3S400")
        nl = random_netlist("q", 80, seed=17)
        placement = place(nl, dev, options=PlacerOptions(steps=20, seed=2))
        result = route(nl, placement, dev)
        hpwl = sum(net_hpwl(n, placement) for n in nl.nets if not n.is_clock)
        assert result.total_wirelength <= 2.2 * max(1, hpwl)

    def test_two_terminal_straight_route_is_optimal(self):
        from repro.fabric.grid import Grid

        dev = get_device("XC3S400")
        nl = Netlist("straight")
        a = nl.add_cell("a", SLICE_REG)
        b = nl.add_cell("b", SLICE_REG)
        nl.add_net("n", a, [b], activity=0.1)
        placement = Placement(dev, Grid(dev).full_region)
        placement.assign("a", SliceCoord(2, 10, 0))
        placement.assign("b", SliceCoord(14, 10, 0))
        routed = route_single_net(nl.net("n"), placement, RoutingGraph(dev), RouterOptions(mode="performance"))
        # Manhattan distance 12; performance route should cover it without
        # detours (wirelength == 12 using hex/double mixes).
        assert routed.wirelength_clbs == 12

    def test_power_mode_no_detours_either(self):
        dev = get_device("XC3S400")
        nl = Netlist("straight")
        a = nl.add_cell("a", SLICE_REG)
        b = nl.add_cell("b", SLICE_REG)
        nl.add_net("n", a, [b], activity=0.1)
        from repro.fabric.grid import Grid

        placement = Placement(dev, Grid(dev).full_region)
        placement.assign("a", SliceCoord(0, 0, 0))
        placement.assign("b", SliceCoord(9, 5, 0))
        routed = route_single_net(nl.net("n"), placement, RoutingGraph(dev), RouterOptions(mode="power"))
        assert routed.wirelength_clbs == 14


class TestSchedulerEdges:
    def test_zero_duration_tasks_allowed(self):
        schedule = CycleSchedule(period_s=0.1)
        schedule.append("instant", 0.0, "compute")
        assert schedule.busy_time_s == 0.0
        assert schedule.fits

    def test_negative_duration_rejected(self):
        schedule = CycleSchedule(period_s=0.1)
        with pytest.raises(ValueError):
            schedule.append("bad", -1.0, "compute")

    def test_utilization_saturates_at_one(self):
        schedule = CycleSchedule(period_s=0.1)
        schedule.append("long", 0.5, "reconfig")
        assert schedule.utilization == 1.0
        assert schedule.idle_time_s == 0.0


class TestSoftcoreEdges:
    def test_readonly_region(self):
        memory = MemoryMap(
            [
                MemoryRegion("ram", 0x0, 8192),
                MemoryRegion("rom", 0x2000, 4096, readonly=True),
            ]
        )
        cpu = Cpu(assemble("addi r1, r0, 0x2000\nsw r1, r1, 0\nhalt"), memory=memory)
        with pytest.raises(CpuError, match="read-only"):
            cpu.run()

    def test_nested_subroutines_via_two_link_registers(self):
        cpu = Cpu(
            assemble(
                """
                addi r1, r0, 5
                brl  r28, outer
                halt
            outer:
                brl  r27, inner
                add  r3, r2, r2
                jr   r28
            inner:
                add  r2, r1, r1
                jr   r27
                """
            )
        )
        cpu.run()
        assert cpu.reg(3) == 20

    def test_label_as_immediate_operand(self):
        cpu = Cpu(assemble("addi r1, r0, buf\nhalt\n.data\nbuf: .space 16"))
        cpu.run()
        assert cpu.reg(1) == 0x1000

    def test_shift_amount_masked(self):
        cpu = Cpu(assemble("addi r1, r0, 1\naddi r2, r0, 33\nsll r3, r1, r2\nhalt"))
        cpu.run()
        assert cpu.reg(3) == 2  # 33 & 31 == 1

    def test_fsl_index_out_of_range(self):
        cpu = Cpu(assemble("put r1, fsl9\nhalt"), fsl_count=2)
        with pytest.raises(CpuError, match="no FSL"):
            cpu.run()


class TestPlacerModes:
    def test_power_weighting_applies_only_off_clock(self):
        opts = PlacerOptions(mode="power", activity_weight=10.0)
        nl = chain_netlist("w", 3, activity=0.5)
        net = nl.nets[0]
        assert opts.net_weight(net) == pytest.approx(1.0 + 5.0)
        clockish = nl.add_net("clk", nl.cell("s0"), [nl.cell("s2")], activity=2.0, is_clock=True)
        assert opts.net_weight(clockish) == 1.0

    def test_wirelength_mode_ignores_activity(self):
        opts = PlacerOptions(mode="wirelength")
        nl = chain_netlist("w", 3, activity=0.9)
        assert opts.net_weight(nl.nets[0]) == 1.0


class TestCliTradeoff:
    def test_tradeoff_runs(self, capsys):
        assert cli_main(["tradeoff", "--levels", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "reconfig-icap" in out and "XC3S1000" in out
