"""Tests for floorplanning, bus macros, config ports, the controller and
the cycle scheduler."""

import pytest

from repro.fabric.bitstream import BitstreamGenerator
from repro.fabric.device import get_device
from repro.reconfig.busmacro import BUSMACRO_SIGNALS, BusMacro, busmacros_for_signals
from repro.reconfig.controller import BitstreamStore, ReconfigController
from repro.reconfig.ports import ConfigurationEvent, Icap, Jcap
from repro.reconfig.scheduler import CYCLE_PERIOD_S, build_cycle_schedule
from repro.reconfig.slots import (
    FloorplanError,
    columns_for_slices,
    plan_floorplan,
    smallest_device_for_plan,
)


@pytest.fixture
def dev():
    return get_device("XC3S400")


class TestBusMacros:
    def test_macro_straddles_boundary(self):
        macro = BusMacro(boundary_column=8, row=3)
        assert all(c.x == 7 for c in macro.static_slices)
        assert all(c.x == 8 for c in macro.dynamic_slices)

    def test_allocation_count(self):
        macros = busmacros_for_signals(20, boundary_column=8, rows=32)
        assert len(macros) == -(-20 // BUSMACRO_SIGNALS)

    def test_directions_alternate(self):
        macros = busmacros_for_signals(32, boundary_column=8, rows=32)
        assert {m.direction for m in macros} == {"s2d", "d2s"}

    def test_too_many_signals_rejected(self):
        with pytest.raises(ValueError, match="fit"):
            busmacros_for_signals(8 * 40, boundary_column=8, rows=32)

    def test_validation(self):
        with pytest.raises(ValueError):
            BusMacro(boundary_column=0, row=0)
        with pytest.raises(ValueError):
            BusMacro(boundary_column=5, row=0, direction="up")


class TestFloorplan:
    def test_basic_plan(self, dev):
        plan = plan_floorplan(dev, static_slices=800, slot_slices=[2400])
        assert plan.static_region.x_min == 0
        assert len(plan.slots) == 1
        assert plan.slots[0].region.is_column_aligned(dev)
        assert plan.slots[0].slice_capacity(dev) >= 2400
        plan.validate()

    def test_columns_for_slices(self, dev):
        per_col = dev.clb_rows * dev.slices_per_clb
        assert columns_for_slices(dev, per_col) == 1
        assert columns_for_slices(dev, per_col + 1) == 2

    def test_multi_slot(self, dev):
        plan = plan_floorplan(dev, 500, [800, 800])
        assert len(plan.slots) == 2
        assert not plan.slots[0].region.overlaps(plan.slots[1].region)

    def test_overfull_rejected(self, dev):
        with pytest.raises(FloorplanError, match="columns"):
            plan_floorplan(dev, 2000, [3000])

    def test_smallest_device_for_plan(self):
        """The paper's sizing: a ~2400-slice slot plus ~800 static slices
        needs the XC3S400; ~1000-slice slots fit the XC3S200."""
        big = smallest_device_for_plan(800, [2400])
        small = smallest_device_for_plan(800, [1000])
        assert big.device.name == "XC3S400"
        assert small.device.name == "XC3S200"

    def test_nothing_fits(self):
        with pytest.raises(FloorplanError, match="no device"):
            smallest_device_for_plan(40000, [40000])


class TestPorts:
    def test_icap_faster_than_jcap(self):
        """Paper: 'The JCAP core offers a reconfiguration rate which is
        lower than the one provided by the ICAP interface.'"""
        assert Icap().bytes_per_second > 10 * Jcap(improved=True).bytes_per_second

    def test_improved_jcap_faster_than_basic(self):
        assert Jcap(improved=True).bytes_per_second > 2 * Jcap(improved=False).bytes_per_second

    def test_configure_parses_and_times(self, dev):
        gen = BitstreamGenerator(dev)
        from repro.fabric.grid import Grid

        bs = gen.partial_for_region(Grid(dev).column_region(4, 9), "m")
        port = Icap()
        event = port.configure(bs)
        assert event.frames == bs.frame_count
        assert event.duration_s == pytest.approx(bs.total_bytes / port.bytes_per_second)
        assert event.energy_j > 0
        assert port.events == [event]

    def test_configure_time_validation(self):
        with pytest.raises(ValueError):
            Icap().configure_time_s(-1)

    def test_port_parameter_validation(self):
        with pytest.raises(ValueError):
            Icap(clock_mhz=0)
        with pytest.raises(ValueError):
            Jcap(tck_mhz=-1)


class TestControllerAndStore:
    def test_store_roundtrip(self, dev):
        gen = BitstreamGenerator(dev)
        from repro.fabric.grid import Grid

        bs = gen.partial_for_region(Grid(dev).column_region(0, 3), "m")
        store = BitstreamStore()
        store.store("m", bs)
        assert store.fetch("m") == bs.to_bytes()
        assert store.total_bytes == len(bs.to_bytes())

    def test_missing_bitstream(self):
        with pytest.raises(KeyError, match="no bitstream"):
            BitstreamStore().fetch("ghost")

    def _controller(self, dev, port=None):
        plan = plan_floorplan(dev, 800, [2400])
        controller = ReconfigController(plan, port or Jcap())
        for name in ("amp_phase", "capacity", "filter"):
            controller.prepare_module(name, 0)
        return controller

    def test_load_sequence(self, dev):
        c = self._controller(dev)
        r1 = c.load("amp_phase", 0)
        assert r1.total_time_s > 0
        assert c.resident[0] == "amp_phase"
        r2 = c.load("capacity", 0)
        assert c.resident[0] == "capacity"
        assert c.total_reconfig_time_s == pytest.approx(r1.total_time_s + r2.total_time_s)

    def test_cached_load_is_free(self, dev):
        c = self._controller(dev)
        c.load("amp_phase", 0)
        r = c.load("amp_phase", 0)
        assert r.total_time_s == 0.0

    def test_unprepared_module_rejected(self, dev):
        c = self._controller(dev)
        with pytest.raises(KeyError):
            c.load("ethernet", 0)

    def test_icap_loads_faster(self, dev):
        jcap_time = self._controller(dev, Jcap()).load("amp_phase", 0).total_time_s
        icap_time = self._controller(dev, Icap()).load("amp_phase", 0).total_time_s
        assert icap_time < jcap_time


class TestScheduler:
    def test_static_cycle_fits(self):
        s = build_cycle_schedule(128e-6, [("sw", 9e-3)], io_time_s=1e-3)
        assert s.fits
        assert s.idle_time_s == pytest.approx(CYCLE_PERIOD_S - 128e-6 - 9e-3 - 1e-3)

    def test_reconfig_cycle_accounting(self):
        s = build_cycle_schedule(
            128e-6,
            [("a", 10e-6), ("b", 2e-6)],
            reconfig_times_s=[5e-3, 20e-3, 15e-3],  # frontend + 2 modules
        )
        assert s.reconfig_time_s == pytest.approx(40e-3)
        assert s.compute_time_s == pytest.approx(12e-6)
        assert s.fits

    def test_overrun_detected(self):
        s = build_cycle_schedule(128e-6, [("a", 10e-6)], reconfig_times_s=[80e-3, 70e-3])
        assert not s.fits
        assert s.utilization == 1.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            build_cycle_schedule(-1.0, [])

    def test_timeline_text(self):
        s = build_cycle_schedule(128e-6, [("amp", 7e-6)], io_time_s=1e-3)
        text = s.timeline()
        assert "sample" in text and "amp" in text and "idle" in text
