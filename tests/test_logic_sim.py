"""Tests for functional netlists and the cycle-based netlist simulator."""

import io

import pytest

from repro.activity.vcd import parse_vcd
from repro.ip.sinus import SINUS_LUT_VALUES, SinusGenerator
from repro.netlist.logic import (
    FunctionalNetlist,
    LogicCell,
    build_counter,
    build_register,
    build_rom,
)
from repro.sim.netlist_sim import CombinationalLoopError, NetlistSimulator


class TestLogicCells:
    def test_lut_evaluation(self):
        fn = FunctionalNetlist("t")
        fn.input("a")
        fn.input("b")
        cell = fn.and_gate("y", ["a", "b"])
        assert cell.evaluate({"a": 1, "b": 1}) == 1
        assert cell.evaluate({"a": 1, "b": 0}) == 0

    def test_gate_tables(self):
        fn = FunctionalNetlist("t")
        for net in ("a", "b", "c"):
            fn.input(net)
        xor3 = fn.xor_gate("x", ["a", "b", "c"])
        assert xor3.evaluate({"a": 1, "b": 1, "c": 1}) == 1
        assert xor3.evaluate({"a": 1, "b": 1, "c": 0}) == 0
        inv = fn.not_gate("n", "a")
        assert inv.evaluate({"a": 0}) == 1
        orr = fn.or_gate("o", ["a", "b"])
        assert orr.evaluate({"a": 0, "b": 0}) == 0
        assert orr.evaluate({"a": 0, "b": 1}) == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown logic kind"):
            LogicCell("x", "nand")
        with pytest.raises(ValueError, match="inputs"):
            LogicCell("x", "lut", inputs=[f"i{k}" for k in range(6)])
        with pytest.raises(ValueError, match="exactly one"):
            LogicCell("x", "dff", inputs=["a", "b"])
        with pytest.raises(ValueError, match="truth table"):
            LogicCell("x", "lut", inputs=["a"], table=0b111)

    def test_undriven_net_detected(self):
        fn = FunctionalNetlist("t")
        fn.lut("y", ["ghost"], 0b01)
        with pytest.raises(ValueError, match="undriven"):
            fn.validate()

    def test_duplicate_rejected(self):
        fn = FunctionalNetlist("t")
        fn.input("a")
        fn.not_gate("y", "a")
        with pytest.raises(ValueError, match="duplicate"):
            fn.not_gate("y", "a")


class TestCounterRomRegister:
    def test_counter_counts(self):
        fn = FunctionalNetlist("c")
        bits = build_counter(fn, "ctr", 4)
        sim = NetlistSimulator(fn)
        seen = []
        for _ in range(20):
            seen.append(sim.value_of(bits))
            sim.step()
        assert seen[:17] == [i % 16 for i in range(17)]

    def test_rom_contents(self):
        fn = FunctionalNetlist("r")
        addr = [fn.input(f"a{i}") for i in range(3)]
        values = [5, 1, 7, 0, 3, 6, 2, 4]
        out = build_rom(fn, "rom", addr, values, 3)
        sim = NetlistSimulator(fn)
        for address, expected in enumerate(values):
            for bit, net in enumerate(addr):
                sim.drive(net, lambda _c, a=address, b=bit: (a >> b) & 1)
            sim.step()
            assert sim.value_of(out) == expected

    def test_rom_width_limits(self):
        fn = FunctionalNetlist("r")
        addr = [fn.input(f"a{i}") for i in range(6)]
        with pytest.raises(ValueError, match="LUT limit"):
            build_rom(fn, "rom", addr, [0] * 64, 4)

    def test_register_delays_one_cycle(self):
        fn = FunctionalNetlist("reg")
        d = fn.input("d")
        (q,) = build_register(fn, "r", [d])
        sim = NetlistSimulator(fn)
        sim.drive("d", lambda c: 1 if c >= 1 else 0)
        sim.step()  # edge ending cycle 0: samples d@c0 = 0
        assert sim.values[q] == 0
        sim.step()  # edge ending cycle 1: samples d@c1 = 1
        assert sim.values[q] == 1


class TestSimulator:
    def test_combinational_loop_detected(self):
        fn = FunctionalNetlist("loop")
        fn.lut("a", ["b"], 0b01)
        fn.lut("b", ["a"], 0b01)
        with pytest.raises(CombinationalLoopError):
            NetlistSimulator(fn)

    def test_reset_restores_state(self):
        fn = FunctionalNetlist("c")
        bits = build_counter(fn, "ctr", 3)
        sim = NetlistSimulator(fn)
        sim.run(5)
        sim.reset()
        assert sim.value_of(bits) == 0
        assert sim.cycle == 0

    def test_activity_requires_run(self):
        fn = FunctionalNetlist("c")
        build_counter(fn, "ctr", 3)
        sim = NetlistSimulator(fn)
        with pytest.raises(ValueError):
            sim.activity_report()

    def test_counter_bit_activities(self):
        """Measured communication rates of a real counter: bit i toggles
        every 2^i cycles."""
        fn = FunctionalNetlist("c")
        bits = build_counter(fn, "ctr", 4)
        sim = NetlistSimulator(fn)
        sim.run(256)
        report = sim.activity_report()
        assert report.get(bits[0]) == pytest.approx(1.0, rel=0.05)
        assert report.get(bits[1]) == pytest.approx(0.5, rel=0.05)
        assert report.get(bits[3]) == pytest.approx(0.125, rel=0.1)

    def test_vcd_roundtrip(self):
        fn = FunctionalNetlist("c")
        bits = build_counter(fn, "ctr", 3)
        sim = NetlistSimulator(fn, clock_period_ns=10.0)
        out = io.StringIO()
        sim.run_with_vcd(32, out)
        data = parse_vcd(out.getvalue())
        assert bits[0] in data
        _w, changes = data[bits[0]]
        assert len(changes) >= 30  # toggles nearly every cycle


class TestFunctionalSinusGenerator:
    def test_produces_the_lut_sequence(self):
        """The gate-level sinus generator reproduces the 32-entry sine
        sequence the behavioural model uses."""
        fn = SinusGenerator.functional_netlist()
        sim = NetlistSimulator(fn)
        out_nets = [f"dout_q{i}" for i in range(8)]
        sim.step()  # pipeline fill: register lags the ROM by one cycle
        produced = []
        for _ in range(64):
            produced.append(sim.value_of(out_nets))
            sim.step()
        assert produced[:32] == list(SINUS_LUT_VALUES)
        assert produced[32:64] == list(SINUS_LUT_VALUES)  # periodic

    def test_structural_lowering_places_and_routes(self):
        """The functional design lowers to a structural netlist that the
        placer and router accept, and simulated activities annotate it."""
        from repro.activity.annotate import annotate_netlist
        from repro.fabric.device import get_device
        from repro.par.placer import PlacerOptions, place
        from repro.par.router import route

        fn = SinusGenerator.functional_netlist()
        sim = NetlistSimulator(fn)
        sim.run(128)
        structural = fn.to_structural()
        structural.validate()
        matched = annotate_netlist(structural, sim.activity_report())
        assert matched > 10
        dev = get_device("XC3S50")
        placement = place(structural, dev, options=PlacerOptions(steps=10))
        result = route(structural, placement, dev)
        assert result.legal

    def test_measured_activity_feeds_power(self):
        """End-to-end: gate-level sim -> activities -> routed power."""
        from repro.activity.annotate import annotate_netlist
        from repro.fabric.device import get_device
        from repro.par.design import Design
        from repro.par.placer import PlacerOptions, place
        from repro.par.router import route
        from repro.power.estimator import PowerEstimator

        fn = SinusGenerator.functional_netlist()
        sim = NetlistSimulator(fn)
        sim.run(256)
        structural = fn.to_structural()
        annotate_netlist(structural, sim.activity_report())
        dev = get_device("XC3S50")
        placement = place(structural, dev, options=PlacerOptions(steps=10))
        routing = route(structural, placement, dev)
        design = Design(structural, dev, placement=placement,
                        routed_nets=routing.nets, graph=routing.graph)
        report = PowerEstimator(design, 16.0).report()
        assert report.routing_w > 0
        # The LSB address bit is among the most active nets.
        hot = {n.name for n in report.hottest_nets(8)}
        assert any("addr" in name or "rom" in name for name in hot)
