"""Tests for the gate-level datapath blocks and the timing report
renderer."""

import pytest

from repro.fabric.device import get_device
from repro.netlist.datapath import (
    build_gated_bus,
    build_serial_mac,
    build_shift_register,
    load_shift_register,
)
from repro.netlist.generate import chain_netlist
from repro.netlist.logic import FunctionalNetlist
from repro.par.design import Design
from repro.par.placer import PlacerOptions, place
from repro.par.router import route
from repro.par.timing import analyze_timing
from repro.sim.netlist_sim import NetlistSimulator


class TestShiftRegister:
    def test_shifts_toward_stage_zero(self):
        fn = FunctionalNetlist("sr")
        serial = fn.input("si")
        stages = build_shift_register(fn, "sr", 4, serial_in=serial)
        sim = NetlistSimulator(fn)
        pattern = [1, 0, 1, 1, 0, 0, 0]
        sim.drive("si", lambda c: pattern[c] if c < len(pattern) else 0)
        outputs = []
        for _ in range(8):
            sim.step()
            outputs.append(sim.values[stages[0]])
        # The serial input appears at stage 0 after 4 shifts.
        assert outputs[3:7] == pattern[:4]

    def test_default_fill_is_zero(self):
        fn = FunctionalNetlist("sr")
        stages = build_shift_register(fn, "sr", 3)
        sim = NetlistSimulator(fn)
        load_shift_register(sim, stages, 0b111)
        sim.run(3)
        assert sim.value_of(stages) == 0

    def test_width_validation(self):
        with pytest.raises(ValueError):
            build_shift_register(FunctionalNetlist("sr"), "sr", 0)


class TestGatedBus:
    def test_enable_gates_all_bits(self):
        fn = FunctionalNetlist("g")
        data = [fn.input(f"d{i}") for i in range(3)]
        enable = fn.input("en")
        gated = build_gated_bus(fn, "g", data, enable)
        sim = NetlistSimulator(fn)
        for i in range(3):
            sim.drive(f"d{i}", lambda _c: 1)
        sim.drive("en", lambda c: c % 2)
        sim.step()
        first = sim.value_of(gated)
        sim.step()
        second = sim.value_of(gated)
        assert {first, second} == {0, 0b111}


class TestSerialMac:
    def _mac(self, x: int, coefficient: int, data_width: int = 8, acc_width: int = 20) -> int:
        fn = FunctionalNetlist("mac")
        acc, shift = build_serial_mac(fn, "m", coefficient, data_width, acc_width)
        sim = NetlistSimulator(fn)
        load_shift_register(sim, shift, x)
        sim.run(data_width)
        return sim.value_of(acc)

    def test_multiplies(self):
        assert self._mac(7, 13) == 91
        assert self._mac(0, 200) == 0
        assert self._mac(255, 255, acc_width=20) == 255 * 255
        assert self._mac(1, 1) == 1

    def test_random_products(self):
        import random

        rng = random.Random(3)
        for _ in range(6):
            x = rng.randrange(256)
            c = rng.randrange(256)
            assert self._mac(x, c) == x * c, (x, c)

    def test_validation(self):
        fn = FunctionalNetlist("mac")
        with pytest.raises(ValueError, match="overflow"):
            build_serial_mac(fn, "m", coefficient=255, data_width=8, acc_width=10)
        with pytest.raises(ValueError):
            build_serial_mac(FunctionalNetlist("m2"), "m", 3, 0, 8)

    def test_mac_activity_measurable(self):
        """The gate-level MAC yields per-net activities — what the §4.3
        flow would consume for this datapath."""
        fn = FunctionalNetlist("mac")
        acc, shift = build_serial_mac(fn, "m", 171, 8, 20)
        sim = NetlistSimulator(fn)
        load_shift_register(sim, shift, 0b10110101)
        sim.run(8)
        report = sim.activity_report()
        assert any(v > 0 for v in report.activities.values())
        # The accumulator LSB region toggles more than the top bits.
        assert report.get(acc[0]) >= report.get(acc[-1])


class TestTimingRender:
    def test_report_text(self):
        dev = get_device("XC3S200")
        nl = chain_netlist("t", 8)
        placement = place(nl, dev, options=PlacerOptions(steps=8))
        routing = route(nl, placement, dev)
        design = Design(nl, dev, placement=placement, routed_nets=routing.nets, graph=routing.graph)
        report = analyze_timing(design)
        text = report.render()
        assert "critical path" in text and "fmax" in text
        met = report.render(clock_mhz=report.fmax_mhz * 0.5)
        assert "MET" in met and "slack +" in met
        violated = report.render(clock_mhz=report.fmax_mhz * 2)
        assert "VIOLATED" in violated
