"""Tests for the event-driven simulation kernel."""

import pytest

from repro.sim.events import MS, NS, US, Simulator


class TestSignals:
    def test_signal_creation(self):
        sim = Simulator()
        s = sim.signal("s", width=8, init=3)
        assert s.value == 3
        assert s.mask == 0xFF

    def test_duplicate_name_raises(self):
        sim = Simulator()
        sim.signal("s")
        with pytest.raises(ValueError, match="duplicate"):
            sim.signal("s")

    def test_bad_width_raises(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="width"):
            sim.signal("s", width=0)

    def test_masked_writes(self):
        sim = Simulator()
        s = sim.signal("s", width=4)
        s.set(0x1F)
        sim.run(ns=1)
        assert s.value == 0xF

    def test_toggle_counting_hamming(self):
        sim = Simulator()
        s = sim.signal("s", width=8)
        s.set(0xFF, delay=1)
        sim.run(ns=1)
        assert s.toggles == 8
        s.set(0xFE, delay=1)
        sim.run(ns=1)
        assert s.toggles == 9


class TestClocks:
    def test_clock_frequency(self):
        sim = Simulator()
        clk = sim.clock("clk", period_ns=20)
        assert clk.frequency_mhz == pytest.approx(50.0)

    def test_rising_edges_counted(self):
        sim = Simulator()
        clk = sim.clock("clk", period_ns=20)
        edges = []
        clk.on_rising_edge(lambda: edges.append(sim.now))
        sim.run(ns=200)
        assert len(edges) == 10

    def test_counter_process(self):
        sim = Simulator()
        clk = sim.clock("clk", period_ns=10)
        q = sim.signal("q", width=16)
        clk.on_rising_edge(lambda: q.set(q.value + 1))
        sim.run(us=1)
        assert q.value == 100

    def test_short_period_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="period"):
            sim.clock("clk", period_ns=0.0005)


class TestCombinational:
    def test_on_change_fires(self):
        sim = Simulator()
        a = sim.signal("a", width=4)
        b = sim.signal("b", width=4)
        sim.on_change(lambda: b.set(a.value * 2), a)
        a.set(5)
        sim.run(ns=1)
        assert b.value == 10

    def test_chained_processes(self):
        sim = Simulator()
        a = sim.signal("a")
        b = sim.signal("b")
        c = sim.signal("c")
        sim.on_change(lambda: b.set(a.value), a)
        sim.on_change(lambda: c.set(b.value), b)
        a.set(1)
        sim.run(ns=1)
        assert c.value == 1


class TestTracing:
    def test_changes_recorded(self):
        sim = Simulator(trace=True)
        clk = sim.clock("clk", period_ns=20)
        sim.run(ns=100)
        clk_changes = [c for c in sim.changes if c[1] == "clk"]
        # initial record + ~10 half-period transitions
        assert len(clk_changes) >= 10

    def test_run_requires_positive_span(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.run()

    def test_time_units(self):
        assert US == 1000 * NS
        assert MS == 1000 * US
