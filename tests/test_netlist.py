"""Tests for the netlist layer."""

import pytest

from repro.netlist.cells import BRAM18, MULT18, SLICE_LOGIC, SLICE_REG, cell_type_by_name
from repro.netlist.generate import chain_netlist, random_netlist
from repro.netlist.netlist import Netlist


class TestCellLibrary:
    def test_lookup(self):
        assert cell_type_by_name("slice_reg") is SLICE_REG

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            cell_type_by_name("LUT9")

    def test_sequential_flags(self):
        assert SLICE_REG.is_sequential
        assert not SLICE_LOGIC.is_sequential
        assert BRAM18.is_sequential


class TestNetlistConstruction:
    def test_add_cells_and_nets(self):
        nl = Netlist("t")
        a = nl.add_cell("a", SLICE_REG)
        b = nl.add_cell("b", SLICE_LOGIC)
        net = nl.add_net("n", a, [b], activity=0.1)
        assert net.fanout == 1
        assert nl.net("n").driver is a
        assert nl.nets_of(b) == [net]

    def test_duplicate_cell_raises(self):
        nl = Netlist("t")
        nl.add_cell("a", SLICE_REG)
        with pytest.raises(ValueError, match="duplicate cell"):
            nl.add_cell("a", SLICE_LOGIC)

    def test_duplicate_net_raises(self):
        nl = Netlist("t")
        a = nl.add_cell("a", SLICE_REG)
        b = nl.add_cell("b", SLICE_REG)
        nl.add_net("n", a, [b])
        with pytest.raises(ValueError, match="duplicate net"):
            nl.add_net("n", b, [a])

    def test_empty_sinks_raises(self):
        nl = Netlist("t")
        a = nl.add_cell("a", SLICE_REG)
        with pytest.raises(ValueError, match="no sinks"):
            nl.add_net("n", a, [])

    def test_foreign_cell_raises(self):
        nl1, nl2 = Netlist("a"), Netlist("b")
        a = nl1.add_cell("a", SLICE_REG)
        b = nl2.add_cell("b", SLICE_REG)
        with pytest.raises(ValueError, match="not in netlist"):
            nl1.add_net("n", a, [b])

    def test_negative_activity_raises(self):
        nl = Netlist("t")
        a = nl.add_cell("a", SLICE_REG)
        b = nl.add_cell("b", SLICE_REG)
        with pytest.raises(ValueError, match="negative activity"):
            nl.add_net("n", a, [b], activity=-0.1)


class TestStats:
    def test_site_counting(self):
        nl = Netlist("t")
        a = nl.add_cell("a", SLICE_REG)
        b = nl.add_cell("b", SLICE_LOGIC)
        m = nl.add_cell("m", MULT18)
        r = nl.add_cell("r", BRAM18)
        nl.add_net("n0", a, [b, m])
        nl.add_net("n1", r, [a])
        s = nl.stats()
        assert s.slices == 2
        assert s.multipliers == 1
        assert s.brams == 1
        assert s.nets == 2
        assert s.cells == 4

    def test_stats_add(self):
        a = random_netlist("a", 20, seed=1).stats()
        b = random_netlist("b", 30, seed=2).stats()
        assert (a + b).slices == a.slices + b.slices


class TestMergeAndValidate:
    def test_merge_namespaces(self):
        main = Netlist("main")
        sub = chain_netlist("sub", 5)
        main.merge(sub, prefix="u0")
        assert main.has_cell("u0/s0")
        assert main.net("u0/q0").driver.name == "u0/s0"

    def test_merge_preserves_activity(self):
        main = Netlist("main")
        sub = chain_netlist("sub", 3, activity=0.33)
        main.merge(sub)
        assert main.net("q0").activity == pytest.approx(0.33)

    def test_validate_catches_dangling(self):
        nl = Netlist("t")
        a = nl.add_cell("a", SLICE_REG)
        b = nl.add_cell("b", SLICE_REG)
        nl.add_cell("orphan", SLICE_REG)
        nl.add_net("n", a, [b])
        with pytest.raises(ValueError, match="disconnected"):
            nl.validate()


class TestGenerators:
    def test_random_netlist_size(self):
        nl = random_netlist("r", 100, seed=5)
        assert len(nl) == 100
        nl.validate()

    def test_random_netlist_deterministic(self):
        a = random_netlist("r", 50, seed=9)
        b = random_netlist("r", 50, seed=9)
        assert [n.activity for n in a.nets] == [n.activity for n in b.nets]

    def test_random_netlist_has_clock(self):
        nl = random_netlist("r", 60, seed=1)
        clocks = [n for n in nl.nets if n.is_clock]
        assert len(clocks) == 1
        assert clocks[0].activity == 2.0

    def test_heavy_tailed_activity(self):
        """A few hot nets, many quiet — precondition of the §4.3 ordering
        heuristic."""
        nl = random_netlist("r", 400, seed=3)
        acts = sorted((n.activity for n in nl.nets if not n.is_clock), reverse=True)
        top_decile = sum(acts[: len(acts) // 10])
        assert top_decile > 0.4 * sum(acts)

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            random_netlist("r", 1)

    def test_chain(self):
        nl = chain_netlist("c", 10)
        assert len(nl.nets) == 9
        with pytest.raises(ValueError):
            chain_netlist("c", 1)
