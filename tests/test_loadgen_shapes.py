"""Loadgen v2: traffic-shape arrival schedules, tail percentiles, and
the end-to-end TCP differential oracle.

The shapes are deterministic quantile inversions, so their defining
features are directly assertable: a flash crowd concentrates mass in its
burst window, the diurnal sine peaks mid-run, the ramp's arrivals
densify toward the end — and every shape yields exactly ``n`` sorted
offsets inside ``[0, duration]``.
"""

import pytest

from repro.serve.loadgen import SHAPES, shape_arrivals
from repro.serve.metrics import Histogram


def _in_window(arrivals, lo, hi):
    return sum(1 for t in arrivals if lo <= t <= hi)


@pytest.mark.parametrize("shape", SHAPES)
def test_every_shape_is_sorted_bounded_and_complete(shape):
    arrivals = shape_arrivals(shape, 500, 10.0, seed=3)
    assert len(arrivals) == 500
    assert arrivals == sorted(arrivals)
    assert all(0.0 <= t <= 10.0 for t in arrivals)


def test_steady_is_even_and_slow_matches_it():
    """``slow`` is steady arrivals by construction — the misbehaviour is
    in the client, not the clock."""
    steady = shape_arrivals("steady", 100, 10.0)
    assert steady == shape_arrivals("slow", 100, 10.0)
    gaps = [b - a for a, b in zip(steady, steady[1:])]
    assert max(gaps) - min(gaps) < 1e-9


def test_flash_concentrates_mass_in_the_burst_window():
    arrivals = shape_arrivals(
        "flash", 1000, 10.0, flash_at=0.5, flash_width=0.08, flash_fraction=0.5
    )
    in_burst = _in_window(arrivals, 5.0 - 0.4, 5.0 + 0.4)
    # 50% burst mass + the ~8% of baseline that falls there anyway.
    assert in_burst >= 500
    outside_rate = (1000 - in_burst) / 9.2  # requests per second elsewhere
    burst_rate = in_burst / 0.8
    assert burst_rate > 5 * outside_rate


def test_diurnal_peaks_mid_run_and_troughs_at_the_edges():
    arrivals = shape_arrivals("diurnal", 1000, 10.0, diurnal_depth=0.8)
    first_tenth = _in_window(arrivals, 0.0, 1.0)
    middle_tenth = _in_window(arrivals, 4.5, 5.5)
    assert middle_tenth > 3 * first_tenth


def test_ramp_densifies_toward_the_end():
    arrivals = shape_arrivals("ramp", 1000, 10.0)
    assert _in_window(arrivals, 9.0, 10.0) > 3 * _in_window(arrivals, 0.0, 1.0)


def test_jitter_is_seeded_and_bounded():
    base = shape_arrivals("steady", 200, 10.0)
    jittered = shape_arrivals("steady", 200, 10.0, seed=5, jitter=0.4)
    assert jittered != base
    assert jittered == shape_arrivals("steady", 200, 10.0, seed=5, jitter=0.4)
    assert all(0.0 <= t <= 10.0 for t in jittered)


def test_shape_validation():
    with pytest.raises(ValueError, match="shape"):
        shape_arrivals("tsunami", 10, 1.0)
    with pytest.raises(ValueError):
        shape_arrivals("steady", 0, 1.0)
    with pytest.raises(ValueError):
        shape_arrivals("steady", 10, 0.0)
    with pytest.raises(ValueError):
        shape_arrivals("diurnal", 10, 1.0, diurnal_depth=1.0)
    with pytest.raises(ValueError):
        shape_arrivals("flash", 10, 1.0, flash_fraction=1.5)


# ---------------------------------------------------------- percentiles


def test_histogram_percentiles_digest():
    hist = Histogram()
    for i in range(1, 1001):
        hist.observe(float(i))
    digest = hist.percentiles((50.0, 99.0, 99.9))
    assert set(digest) == {"p50", "p99", "p999"}
    assert digest["p50"] == pytest.approx(500.5)
    assert digest["p99"] == pytest.approx(990.01, rel=1e-3)
    assert digest["p999"] > digest["p99"] > digest["p50"]


def test_histogram_percentiles_empty_is_none_not_raise():
    assert Histogram().percentiles() == {
        "p50": None,
        "p95": None,
        "p99": None,
        "p999": None,
    }


# ------------------------------------------------- end-to-end TCP oracle


def test_tcp_edge_is_bit_identical_to_in_process():
    """The ISSUE's acceptance gate: N concurrent TCP clients produce
    responses bit-identical to the in-process FleetService for the same
    seeded scenarios."""
    from repro.verifylab import run_net_oracle

    report = run_net_oracle([0, 7], clients=3)
    assert report["ok"], report["violations"]
    assert report["requests_compared"] >= 2
    assert report["seeds_checked"] == 2


def test_driver_replays_a_shape_end_to_end():
    """Loadgen v2 against a live socket: every request settles, the
    report carries reservoir-backed p99/p999, and accounting closes."""
    from repro.net import NetConfig, NetServer, run_shape
    from repro.serve.pool import FleetService

    service = FleetService(workers=2, max_batch=8, queue_capacity=128)
    service.start()
    server = NetServer(service, NetConfig()).start()
    try:
        report = run_shape(
            "127.0.0.1",
            server.port,
            shape="flash",
            n_requests=60,
            duration_s=0.5,
            n_clients=3,
            n_tanks=4,
            timeout_s=60.0,
        )
    finally:
        server.stop()
        service.shutdown()
    counts = report["counts"]
    assert counts["lost"] == 0 and not report["client_errors"]
    assert counts["ok"] + counts["expired"] + counts["failed"] + counts["rejected"] == 60
    assert report["latency_s"]["count"] == counts["ok"]
    assert report["latency_s"]["p999"] >= report["latency_s"]["p99"] > 0.0
