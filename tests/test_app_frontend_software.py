"""Tests for the analog front end and the soft-core software baseline."""

import numpy as np
import pytest

from repro.app.dsp import process_measurement
from repro.app.frontend import AnalogFrontEnd
from repro.app.software import RUNTIME_OVERHEAD_BYTES, MeasurementSoftware
from repro.app.tank import MeasurementCircuit
from repro.fabric.device import get_device


@pytest.fixture(scope="module")
def fe():
    return AnalogFrontEnd(seed=42)


@pytest.fixture(scope="module")
def cycle(fe):
    return fe.sample_cycle(0.6, 512)


class TestFrontend:
    def test_sample_counts_and_rate(self, fe, cycle):
        assert cycle.meas.size == 512
        assert cycle.ref.size == 512
        assert cycle.sample_rate_hz == pytest.approx(4e6)
        assert cycle.tone_hz == pytest.approx(500e3)
        assert cycle.duration_s == pytest.approx(128e-6)

    def test_level_recovered(self, fe):
        for level in (0.2, 0.8):
            cyc = fe.sample_cycle(level, 512)
            out = process_measurement(cyc.meas, cyc.ref, cyc.sample_rate_hz, cyc.tone_hz, fe.circuit)
            assert out.level == pytest.approx(level, abs=0.05)

    def test_monotone_in_level(self, fe):
        caps = []
        for level in (0.1, 0.5, 0.9):
            cyc = fe.sample_cycle(level, 512)
            out = process_measurement(cyc.meas, cyc.ref, cyc.sample_rate_hz, cyc.tone_hz, fe.circuit)
            caps.append(out.capacitance_pf)
        assert caps[0] < caps[1] < caps[2]

    def test_frame_too_short_rejected(self, fe):
        with pytest.raises(ValueError, match="period"):
            fe.sample_cycle(0.5, 4)

    def test_bad_level_rejected(self, fe):
        with pytest.raises(ValueError):
            fe.sample_cycle(1.4, 512)

    def test_gain_validation(self):
        with pytest.raises(ValueError, match="gains"):
            AnalogFrontEnd(meas_gain=0.0)
        with pytest.raises(ValueError, match="excitation"):
            AnalogFrontEnd(excitation_scale=0.95)

    def test_noise_changes_samples_not_level(self):
        quiet = AnalogFrontEnd(noise_rms=0.0, seed=1)
        noisy = AnalogFrontEnd(noise_rms=0.005, seed=1)
        a = quiet.sample_cycle(0.5, 512)
        b = noisy.sample_cycle(0.5, 512)
        assert not np.array_equal(a.meas, b.meas)
        out = process_measurement(b.meas, b.ref, b.sample_rate_hz, b.tone_hz, noisy.circuit)
        assert out.level == pytest.approx(0.5, abs=0.06)


class TestSoftware:
    @pytest.fixture(scope="class")
    def sw(self):
        return MeasurementSoftware(frame_samples=512)

    def test_image_exceeds_60_kbyte(self, sw):
        """Paper: 'the software algorithms required more than 60 Kbyte of
        memory, which made it necessary to store the code in external
        SRAM.'"""
        assert sw.image_bytes > 60 * 1024
        assert sw.image_bytes - RUNTIME_OVERHEAD_BYTES > 8 * 1024  # real kernel+data too

    def test_image_exceeds_small_device_bram(self, sw):
        for name in ("XC3S50", "XC3S200", "XC3S400"):
            assert not sw.fits_in_bram(get_device(name).bram_bytes)

    def test_matches_reference_dsp(self, sw, fe, cycle):
        """The assembly program must compute what the numpy reference
        computes (within float32/fixed-point tolerance)."""
        result = sw.run(cycle.meas, cycle.ref)
        ref = process_measurement(
            cycle.meas, cycle.ref, cycle.sample_rate_hz, cycle.tone_hz, fe.circuit
        )
        assert result.meas_amplitude == pytest.approx(ref.meas_amplitude, rel=2e-3)
        assert result.ref_amplitude == pytest.approx(ref.ref_amplitude, rel=2e-3)
        assert result.capacitance_pf == pytest.approx(ref.capacitance_pf, rel=2e-2)
        assert result.level == pytest.approx(ref.level, abs=0.02)

    def test_processing_time_near_paper(self, sw, cycle):
        """~7 ms at the MicroBlaze clock (paper: 7 ms)."""
        result = sw.run(cycle.meas, cycle.ref)
        t = result.time_s(25.0)
        assert 4e-3 < t < 12e-3

    def test_external_sram_slower_than_bram(self, sw, cycle):
        ext = sw.run(cycle.meas, cycle.ref, external_code=True)
        bram = sw.run(cycle.meas, cycle.ref, external_code=False)
        assert ext.cycles > 1.05 * bram.cycles
        assert ext.level == bram.level  # identical results

    def test_filter_state_carries(self, sw, cycle):
        first = sw.run(cycle.meas, cycle.ref)
        second = sw.run(cycle.meas, cycle.ref, previous_state=(0.0, True))
        # IIR from 0 toward the level: second reading must be below first.
        assert second.level < first.level

    def test_frame_size_validated(self, sw):
        with pytest.raises(ValueError, match="512"):
            sw.run(np.zeros(100), np.zeros(100))

    def test_cycle_counts_deterministic(self, sw, cycle):
        a = sw.run(cycle.meas, cycle.ref)
        b = sw.run(cycle.meas, cycle.ref)
        assert a.cycles == b.cycles
