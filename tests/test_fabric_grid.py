"""Tests for the CLB/slice grid geometry."""

import pytest

from repro.fabric.device import get_device
from repro.fabric.grid import Grid, Region, SliceCoord, bounding_region


@pytest.fixture
def dev():
    return get_device("XC3S200")


class TestSliceCoord:
    def test_manhattan(self):
        a = SliceCoord(2, 3, 0)
        b = SliceCoord(5, 1, 3)
        assert a.manhattan(b) == 3 + 2
        assert b.manhattan(a) == 5

    def test_clb(self):
        assert SliceCoord(4, 7, 2).clb == (4, 7)

    def test_ordering(self):
        assert SliceCoord(0, 0, 0) < SliceCoord(0, 0, 1) < SliceCoord(1, 0, 0)


class TestRegion:
    def test_dimensions(self):
        r = Region(2, 3, 5, 10)
        assert r.width == 4
        assert r.height == 8
        assert r.clb_count == 32

    def test_degenerate_raises(self):
        with pytest.raises(ValueError, match="degenerate"):
            Region(5, 0, 2, 0)

    def test_negative_raises(self):
        with pytest.raises(ValueError, match="negative"):
            Region(-1, 0, 2, 2)

    def test_contains(self):
        r = Region(1, 1, 3, 3)
        assert r.contains(SliceCoord(2, 2, 1))
        assert not r.contains(SliceCoord(0, 2, 0))
        assert not r.contains(SliceCoord(2, 4, 0))

    def test_overlaps(self):
        a = Region(0, 0, 3, 3)
        assert a.overlaps(Region(3, 3, 5, 5))  # shares corner CLB
        assert not a.overlaps(Region(4, 0, 6, 3))
        assert not a.overlaps(Region(0, 4, 3, 6))

    def test_column_alignment(self, dev):
        full = Region(2, 0, 4, dev.clb_rows - 1)
        assert full.is_column_aligned(dev)
        assert not Region(2, 1, 4, dev.clb_rows - 1).is_column_aligned(dev)
        assert not Region(2, 0, 4, dev.clb_rows - 2).is_column_aligned(dev)

    def test_slice_capacity(self, dev):
        assert Region(0, 0, 0, 0).slice_capacity(dev) == dev.slices_per_clb


class TestGrid:
    def test_full_region_capacity(self, dev):
        grid = Grid(dev)
        assert grid.full_region.slice_capacity(dev) == dev.slices

    def test_all_slices_count(self, dev):
        grid = Grid(dev)
        assert sum(1 for _ in grid.all_slices()) == dev.slices

    def test_slices_in_region(self, dev):
        grid = Grid(dev)
        coords = list(grid.slices_in(Region(0, 0, 1, 1)))
        assert len(coords) == 4 * dev.slices_per_clb
        assert all(c.x <= 1 and c.y <= 1 for c in coords)

    def test_region_out_of_bounds(self, dev):
        grid = Grid(dev)
        with pytest.raises(ValueError, match="exceeds"):
            list(grid.slices_in(Region(0, 0, dev.clb_columns, 0)))

    def test_column_region(self, dev):
        grid = Grid(dev)
        r = grid.column_region(3, 5)
        assert r.is_column_aligned(dev)
        assert r.width == 3

    def test_split_columns(self, dev):
        grid = Grid(dev)
        left, right = grid.split_columns(8)
        assert left.width == 8
        assert right.width == dev.clb_columns - 8
        assert not left.overlaps(right)

    def test_split_bad_boundary(self, dev):
        grid = Grid(dev)
        with pytest.raises(ValueError):
            grid.split_columns(0)
        with pytest.raises(ValueError):
            grid.split_columns(dev.clb_columns)

    def test_is_valid(self, dev):
        grid = Grid(dev)
        assert grid.is_valid(SliceCoord(0, 0, 0))
        assert not grid.is_valid(SliceCoord(dev.clb_columns, 0, 0))
        assert not grid.is_valid(SliceCoord(0, 0, dev.slices_per_clb))


class TestBoundingRegion:
    def test_basic(self):
        coords = [SliceCoord(2, 5, 0), SliceCoord(7, 1, 2), SliceCoord(4, 4, 1)]
        r = bounding_region(coords)
        assert (r.x_min, r.y_min, r.x_max, r.y_max) == (2, 1, 7, 5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_region([])
