"""Tests of the energy-aware scheduler (repro.serve.energy).

Three layers: the :class:`EnergyModel`'s predictions must agree with the
executor's measured accounting (prediction parity is what makes the
policy's choices meaningful), the :class:`EnergyPolicy`'s decisions must
respect deadline slack, and the broker's ``select`` take must preserve
per-tank FIFO order (the invariant that keeps any scheduling policy
bit-exact against the single-system reference).
"""

import pytest

from repro.app.system import FpgaReconfigSystem
from repro.fabric.device import get_device
from repro.serve import (
    DeviceMixPlanner,
    EnergyModel,
    EnergyPolicy,
    FleetService,
    MeasurementRequest,
    RequestBroker,
    offered_load_from_admission,
    synthetic_load,
)
from repro.serve.batching import STANDARD_PIPELINE
from repro.serve.energy import DEFAULT_FILL_WINDOW_S
from repro.serve.supervisor import AdmissionController


@pytest.fixture(scope="module")
def system():
    return FpgaReconfigSystem()


@pytest.fixture(scope="module")
def model(system):
    return EnergyModel.from_system(system)


# -------------------------------------------------------------- EnergyModel


def test_estimate_matches_measured_batch_energy(model):
    """Prediction parity: the model's estimate of a batch the fleet then
    actually executes must equal the executor's measured accounting."""
    service = FleetService(workers=1, max_batch=8, batched=True, seed=7)
    service.start()
    requests = synthetic_load(8, n_tanks=2)
    accepted, rejected = service.submit_many(requests)
    assert not rejected
    assert service.await_responses(accepted, timeout_s=120)
    assert service.shutdown()
    snap = service.metrics_snapshot()
    assert snap["counters"]["batches_formed"] == 1
    measured = snap["gauges"]["energy_j"]
    live_model = EnergyModel.from_system(service.workers[0].executor.system)
    predicted = live_model.estimate(STANDARD_PIPELINE, 8, resident=None)
    assert predicted.energy_j == pytest.approx(measured, rel=1e-9)
    assert snap["gauges"]["reconfig_energy_j"] == pytest.approx(
        predicted.reconfig_energy_j, rel=1e-9
    )


def test_joules_per_request_decreases_with_batch_size(model):
    """Reconfiguration cost is per batch, so J/request must fall
    monotonically as the batch amortizes it over more requests."""
    costs = [
        model.estimate(STANDARD_PIPELINE, n).joules_per_request
        for n in range(1, 17)
    ]
    assert all(a > b for a, b in zip(costs, costs[1:]))
    assert costs[0] > 3 * costs[-1]


def test_optimal_batch_is_the_largest_under_this_cost_structure(model):
    size, estimate = model.optimal_batch_size(STANDARD_PIPELINE, 16)
    assert size == 16
    assert estimate.batch_size == 16


def test_resident_module_skips_the_first_reconfiguration(model):
    cold = model.estimate(("amp_phase", "capacity"), 4, resident=None)
    warm = model.estimate(("amp_phase", "capacity"), 4, resident="amp_phase")
    assert warm.reconfig_energy_j < cold.reconfig_energy_j
    assert warm.energy_j < cold.energy_j
    # Exactly one stage switch was saved.
    saved = model.stage_costs["amp_phase"].reconfig_energy_j
    assert cold.reconfig_energy_j - warm.reconfig_energy_j == pytest.approx(saved)


def test_estimate_validates_inputs(model):
    with pytest.raises(ValueError):
        model.estimate(STANDARD_PIPELINE, 0)
    with pytest.raises(ValueError):
        model.estimate(("frontend", "warp_drive"), 1)
    with pytest.raises(ValueError):
        model.optimal_batch_size(STANDARD_PIPELINE, 0)


def test_analytic_device_model_tracks_the_live_system(system, model):
    """``for_device`` prices a catalog device without building a system;
    it must agree with the live-system model to within the bitstream
    header overhead it cannot see (a few percent)."""
    analytic = EnergyModel.for_device(system.device)
    live = model.estimate(STANDARD_PIPELINE, 8, resident="filter")
    approx = analytic.estimate(STANDARD_PIPELINE, 8, resident="filter")
    assert approx.energy_j == pytest.approx(live.energy_j, rel=0.10)


# ------------------------------------------------------------- EnergyPolicy


def _groups(count, deadline=None, head=0, pipeline=STANDARD_PIPELINE):
    return {
        tuple(pipeline): {
            "count": count,
            "earliest_deadline_s": deadline,
            "head_position": head,
        }
    }


def test_policy_waits_to_fill_when_slack_allows(model):
    policy = EnergyPolicy(model, max_batch=8, fill_window_s=0.2)
    decision = policy.decide(_groups(2, deadline=100.0), now=0.0)
    assert decision.target_batch == 8
    assert decision.wait_until_s == pytest.approx(0.2)


def test_policy_dispatches_immediately_when_optimal_batch_is_queued(model):
    policy = EnergyPolicy(model, max_batch=4, fill_window_s=0.2)
    decision = policy.decide(_groups(6, deadline=100.0), now=0.0)
    assert decision.target_batch == 4
    assert decision.wait_until_s == 0.0


def test_policy_serves_urgent_deadline_without_waiting(model):
    policy = EnergyPolicy(model, max_batch=8, fill_window_s=0.2, slo_margin_s=0.02)
    decision = policy.decide(_groups(2, deadline=0.01), now=0.0)
    assert decision.wait_until_s == 0.0
    assert decision.target_batch == 2  # what is queued, now


def test_policy_wait_is_bounded_by_deadline_slack(model):
    policy = EnergyPolicy(model, max_batch=8, fill_window_s=10.0, slo_margin_s=0.0)
    decision = policy.decide(_groups(1, deadline=0.5), now=0.0)
    assert 0.0 < decision.wait_until_s <= 0.5


def test_policy_picks_the_cheaper_group(model):
    """Two pipeline groups queued: the fuller one amortizes better, so
    the policy must serve it first even though the other is the head."""
    policy = EnergyPolicy(model, max_batch=8, fill_window_s=0.0)
    short = ("amp_phase", "capacity")
    groups = {
        tuple(short): {"count": 1, "earliest_deadline_s": None, "head_position": 0},
        STANDARD_PIPELINE: {
            "count": 8,
            "earliest_deadline_s": None,
            "head_position": 1,
        },
    }
    decision = policy.decide(groups, now=0.0)
    assert decision.pipeline == STANDARD_PIPELINE


def test_policy_rejects_empty_queue_and_bad_config(model):
    policy = EnergyPolicy(model)
    with pytest.raises(ValueError):
        policy.decide({}, now=0.0)
    with pytest.raises(ValueError):
        EnergyPolicy(model, max_batch=0)
    with pytest.raises(ValueError):
        EnergyPolicy(model, fill_window_s=-1.0)


def test_policy_uses_admission_ewma_to_budget_the_wait(model):
    """With a slow measured service time, the execution estimate eats the
    deadline slack and the policy must not wait."""
    admission = AdmissionController(workers=1)
    admission.observe_batch(1, 10.0)  # 10 s/request measured
    policy = EnergyPolicy(
        model, max_batch=8, fill_window_s=0.2, slo_margin_s=0.0, admission=admission
    )
    decision = policy.decide(_groups(2, deadline=1.0), now=0.0)
    assert decision.wait_until_s == 0.0


# ----------------------------------------------------- broker group support


def _req(rid, tank, pipeline=STANDARD_PIPELINE, deadline=None):
    return MeasurementRequest(
        request_id=rid,
        tank_id=tank,
        level=0.5,
        pipeline=tuple(pipeline),
        deadline_s=deadline,
    )


def test_group_summary_counts_and_deadlines():
    broker = RequestBroker(capacity=16)
    short = ("amp_phase", "capacity")
    broker.submit(_req(1, "t0", deadline=9.0))
    broker.submit(_req(2, "t1", pipeline=short))
    broker.submit(_req(3, "t2", deadline=5.0))
    groups = broker.group_summary()
    assert groups[STANDARD_PIPELINE]["count"] == 2
    assert groups[STANDARD_PIPELINE]["earliest_deadline_s"] == 5.0
    assert groups[STANDARD_PIPELINE]["head_position"] == 0
    assert groups[tuple(short)] == {
        "count": 1,
        "earliest_deadline_s": None,
        "head_position": 1,
    }


def test_take_select_skips_other_pipelines():
    broker = RequestBroker(capacity=16)
    short = ("amp_phase", "capacity")
    broker.submit(_req(1, "t0", pipeline=short))
    broker.submit(_req(2, "t1"))
    broker.submit(_req(3, "t2"))
    taken = broker.take(8, timeout_s=0.0, select=STANDARD_PIPELINE)
    assert [r.request_id for r in taken] == [2, 3]
    assert broker.depth == 1  # the short-pipeline request stays queued


def test_take_select_preserves_per_tank_fifo():
    """A tank's earlier request of another pipeline blocks its later
    selected-pipeline request: measurements of one tank must never be
    reordered (the IIR filter state depends on it)."""
    broker = RequestBroker(capacity=16)
    short = ("amp_phase", "capacity")
    broker.submit(_req(1, "tankA", pipeline=short))
    broker.submit(_req(2, "tankA"))
    broker.submit(_req(3, "tankB"))
    taken = broker.take(8, timeout_s=0.0, select=STANDARD_PIPELINE)
    assert [r.request_id for r in taken] == [3]
    assert [r.request_id for r in broker.take(8, timeout_s=0.0)] == [1, 2]


def test_take_select_falls_back_to_head_group():
    """When the selected group vanished (stale policy view), a non-empty
    queue must still yield a batch."""
    broker = RequestBroker(capacity=16)
    short = ("amp_phase", "capacity")
    broker.submit(_req(1, "t0", pipeline=short))
    broker.submit(_req(2, "t1", pipeline=short))
    taken = broker.take(8, timeout_s=0.0, select=STANDARD_PIPELINE)
    assert [r.request_id for r in taken] == [1, 2]


def test_take_rejects_match_with_select():
    broker = RequestBroker(capacity=4)
    broker.submit(_req(1, "t0"))
    with pytest.raises(ValueError):
        broker.take(
            4,
            timeout_s=0.0,
            match=lambda h, r: True,
            select=STANDARD_PIPELINE,
        )


# --------------------------------------------------------- DeviceMixPlanner


@pytest.fixture(scope="module")
def planner():
    return DeviceMixPlanner(max_batch=16)


def test_planner_small_die_wins_at_low_load(planner):
    assert planner.best(5.0).device == "XC3S400"


def test_planner_big_die_wins_at_high_load(planner):
    best = planner.best(5000.0)
    assert best.slots_per_die > 1
    assert get_device(best.device).slices > get_device("XC3S400").slices


def test_planner_skips_infeasible_devices(planner):
    plans = planner.plan(50.0)
    names = {p.device for p in plans}
    # XC3S50/XC3S200 cannot hold the static side plus one slot.
    assert "XC3S50" not in names and "XC3S200" not in names
    assert "XC3S400" in names
    # Sorted best-first by fleet power.
    powers = [p.total_power_w for p in plans]
    assert powers == sorted(powers)


def test_planner_capacity_covers_the_offered_load(planner):
    for load in (1.0, 300.0, 2000.0):
        for plan in planner.plan(load):
            assert plan.capacity_rps >= load
            assert 0.0 < plan.utilization <= 1.0


def test_planner_rejects_non_positive_load(planner):
    with pytest.raises(ValueError):
        planner.plan(0.0)


def test_offered_load_from_admission():
    admission = AdmissionController(workers=3)
    assert offered_load_from_admission(admission) == 0.0
    admission.observe_batch(4, 2.0)  # 0.5 s/request
    assert offered_load_from_admission(admission) == pytest.approx(6.0)


# ------------------------------------------------------------ fleet wiring


def test_energy_policy_service_serves_everything_exactly():
    """The energy policy changes *when* requests run, never *what* they
    compute: responses must equal the FIFO service's bit for bit."""
    results = {}
    for policy in ("fifo", "energy"):
        service = FleetService(
            workers=1, max_batch=8, batched=True, seed=11, policy=policy
        )
        service.start()
        requests = synthetic_load(12, n_tanks=3)
        accepted, rejected = service.submit_many(requests)
        assert not rejected
        assert service.await_responses(accepted, timeout_s=120)
        assert service.shutdown()
        results[policy] = {
            r.request_id: (r.status, r.level_measured, r.capacitance_pf)
            for r in service.responses()
        }
        assert service.metrics_snapshot()["service"]["policy"] == policy
    assert results["fifo"] == results["energy"]


def test_energy_policy_requires_batched_mode():
    with pytest.raises(ValueError):
        FleetService(batched=False, policy="energy")
    with pytest.raises(ValueError):
        FleetService(policy="thermal")


def test_energy_service_defaults_the_fill_window():
    service = FleetService(workers=1, policy="energy")
    assert service.scheduler.policy.fill_window_s == DEFAULT_FILL_WINDOW_S
    service = FleetService(workers=1, policy="energy", window_s=0.2)
    assert service.scheduler.policy.fill_window_s == 0.2
