"""Tests for frame ECC scrubbing, the CPU profiler, and the gate-level
first-order delta-sigma DAC."""

import random

import pytest

from repro.app.frontend import AnalogFrontEnd
from repro.app.software import MeasurementSoftware
from repro.fabric.bitstream import BitstreamGenerator, Frame
from repro.fabric.device import get_device
from repro.fabric.ecc import (
    EccScrubber,
    EccStatus,
    check_frame,
    correct_words,
    encode_frame,
)
from repro.fabric.faults import ConfigurationMemory
from repro.fabric.grid import Grid
from repro.ip.delta_sigma import functional_first_order_dac
from repro.sim.netlist_sim import NetlistSimulator
from repro.softcore.asm import assemble
from repro.softcore.cpu import Cpu


@pytest.fixture
def frame():
    dev = get_device("XC3S400")
    gen = BitstreamGenerator(dev)
    bs = gen.partial_for_region(Grid(dev).column_region(3, 3), "m")
    return bs.frames[0]


class TestEccCodec:
    def test_clean_frame_ok(self, frame):
        ecc = encode_frame(frame)
        status, pos = check_frame(frame.words, ecc)
        assert status is EccStatus.OK and pos is None

    def test_single_bit_corrected(self, frame):
        ecc = encode_frame(frame)
        rng = random.Random(4)
        for _ in range(10):
            word = rng.randrange(len(frame.words))
            bit = rng.randrange(32)
            corrupted = list(frame.words)
            corrupted[word] ^= 1 << bit
            status, pos = check_frame(corrupted, ecc)
            assert status is EccStatus.CORRECTED
            assert pos == 32 * word + bit
            assert tuple(correct_words(corrupted, pos)) == frame.words

    def test_double_bit_detected_not_corrected(self, frame):
        ecc = encode_frame(frame)
        corrupted = list(frame.words)
        corrupted[0] ^= 1 << 3
        corrupted[5] ^= 1 << 17
        status, _pos = check_frame(corrupted, ecc)
        assert status is EccStatus.UNCORRECTABLE

    def test_correct_words_validation(self, frame):
        with pytest.raises(ValueError):
            correct_words(frame.words, 32 * len(frame.words))


class TestEccScrubber:
    def _setup(self):
        dev = get_device("XC3S400")
        gen = BitstreamGenerator(dev)
        bs = gen.partial_for_region(Grid(dev).column_region(6, 8), "m")
        memory = ConfigurationMemory()
        memory.load(bs)
        scrubber = EccScrubber(memory)
        scrubber.protect(bs)
        return memory, scrubber, bs

    def test_clean_pass(self):
        _m, scrubber, bs = self._setup()
        outcome = scrubber.scrub()
        assert len(outcome["ok"]) == bs.frame_count
        assert not outcome["corrected"] and not outcome["uncorrectable"]

    def test_corrects_seu_without_golden(self):
        memory, scrubber, bs = self._setup()
        fault = memory.inject_seu(random.Random(7))
        outcome = scrubber.scrub()
        assert outcome["corrected"] == [fault.frame_address]
        # Memory is restored bit-exactly.
        assert memory.corrupted_frames(bs) == []
        # And a second pass is clean.
        assert not scrubber.scrub()["corrected"]

    def test_double_fault_escalates(self):
        memory, scrubber, _bs = self._setup()
        address = sorted(memory._frames)[0]
        memory.inject_at(address, 0, 1)
        memory.inject_at(address, 2, 9)
        outcome = scrubber.scrub()
        assert outcome["uncorrectable"] == [address]

    def test_unprotected_rejected(self):
        memory = ConfigurationMemory()
        with pytest.raises(ValueError, match="protect"):
            EccScrubber(memory).scrub()


class TestCpuProfiler:
    def test_hot_spots_find_the_loop(self):
        src = """
            addi r2, r0, 100
        loop:
            muli r3, r2, 3
            addi r2, r2, -1
            bne  r2, r0, loop
            halt
        """
        cpu = Cpu(assemble(src), profile=True)
        cpu.run()
        spots = cpu.hot_spots(3)
        # The multiply inside the loop dominates.
        assert spots[0][3].startswith("muli")
        assert spots[0][2] > 0.3
        report = cpu.profile_report()
        assert "muli" in report and "%" in report

    def test_profiler_off_by_default(self):
        cpu = Cpu(assemble("nop\nhalt"))
        cpu.run()
        with pytest.raises(ValueError, match="profile=True"):
            cpu.hot_spots()

    def test_software_profile_blames_the_dft_loop(self):
        """The paper's motivation made visible: nearly all software cycles
        sit in the per-sample DFT loop's soft-float operations."""
        fe = AnalogFrontEnd(seed=9)
        cycle = fe.sample_cycle(0.5, 512)
        sw = MeasurementSoftware(fe.circuit, 512, fe.output_rate_hz, fe.tone_hz)
        result, report = sw.profile_run(cycle.meas, cycle.ref)
        assert result.cycles > 100_000
        top = report.splitlines()[1]
        assert any(op in top for op in ("fmul", "fadd", "i2f", "lw"))
        # The loop body (a handful of PCs) accounts for most cycles.
        cpu_share = sum(
            float(line.split()[2].rstrip("%")) for line in report.splitlines()[1:9]
        )
        assert cpu_share > 80.0


class TestFunctionalFirstOrderDac:
    def test_ones_density_matches_input(self):
        fn, inputs, out = functional_first_order_dac(width=6)
        sim = NetlistSimulator(fn)
        code = 21  # 21/64
        for i, net in enumerate(inputs):
            sim.drive(net, lambda _c, k=i: (code >> k) & 1)
        ones = 0
        cycles = 640
        for _ in range(cycles):
            sim.step()
            ones += sim.values[out]
        assert ones / cycles == pytest.approx(code / 64, abs=0.02)

    def test_zero_input_stays_low(self):
        fn, inputs, out = functional_first_order_dac(width=4)
        sim = NetlistSimulator(fn)
        sim.run(50)
        assert sim.values[out] == 0

    def test_width_validation(self):
        with pytest.raises(ValueError):
            functional_first_order_dac(width=1)

    def test_output_activity_peaks_midscale(self):
        """Delta-sigma physics: the output bit toggles fastest at
        mid-scale input — measurable on the gate-level model."""
        def out_activity(code, width=5):
            fn, inputs, out = functional_first_order_dac(width)
            sim = NetlistSimulator(fn)
            for i, net in enumerate(inputs):
                sim.drive(net, lambda _c, k=i: (code >> k) & 1)
            sim.run(320)
            return sim.activity_report().get(out)

        mid = out_activity(16)
        low = out_activity(2)
        assert mid > 2 * low
