"""Tests for static timing analysis."""

import pytest

from repro.fabric.device import get_device
from repro.netlist.cells import SLICE_LOGIC, SLICE_REG
from repro.netlist.generate import chain_netlist, random_netlist
from repro.netlist.netlist import Netlist
from repro.par.design import Design
from repro.par.placer import PlacerOptions, place
from repro.par.router import route
from repro.par.timing import analyze_timing


@pytest.fixture
def dev():
    return get_device("XC3S200")


def _implemented(nl, dev, steps=15):
    placement = place(nl, dev, options=PlacerOptions(steps=steps))
    routing = route(nl, placement, dev)
    return Design(nl, dev, placement=placement, routed_nets=routing.nets, graph=routing.graph)


class TestTiming:
    def test_chain_critical_path(self, dev):
        design = _implemented(chain_netlist("c", 10), dev)
        report = analyze_timing(design)
        # Register chain: each reg-to-reg arc is one cell delay + one net
        # delay; critical path is a single arc.
        assert report.critical_path_ns > 0
        assert len(report.critical_path) >= 2
        assert report.fmax_mhz < float("inf")

    def test_unplaced_design_rejected(self, dev):
        design = Design(chain_netlist("c", 4), dev)
        with pytest.raises(ValueError, match="not placed"):
            analyze_timing(design)

    def test_combinational_chain_accumulates(self, dev):
        """A chain of combinational cells accumulates delay along its
        whole length, unlike a registered chain."""
        comb = Netlist("comb")
        cells = [comb.add_cell(f"c{i}", SLICE_LOGIC) for i in range(8)]
        head = comb.add_cell("head", SLICE_REG)
        comb.add_net("n_head", head, [cells[0]], activity=0.1)
        for i in range(7):
            comb.add_net(f"n{i}", cells[i], [cells[i + 1]], activity=0.1)
        tail = comb.add_cell("tail", SLICE_REG)
        comb.add_net("n_tail", cells[-1], [tail], activity=0.1)

        reg = chain_netlist("reg", 10)
        d_comb = _implemented(comb, dev)
        d_reg = _implemented(reg, dev)
        t_comb = analyze_timing(d_comb).critical_path_ns
        t_reg = analyze_timing(d_reg).critical_path_ns
        assert t_comb > 3 * t_reg

    def test_combinational_loop_does_not_hang(self, dev):
        nl = Netlist("loop")
        a = nl.add_cell("a", SLICE_LOGIC)
        b = nl.add_cell("b", SLICE_LOGIC)
        nl.add_net("ab", a, [b], activity=0.1)
        nl.add_net("ba", b, [a], activity=0.1)
        design = _implemented(nl, dev)
        report = analyze_timing(design)  # must terminate
        assert report.critical_path_ns >= 0

    def test_meets(self, dev):
        design = _implemented(chain_netlist("c", 6), dev)
        report = analyze_timing(design)
        assert report.meets(report.fmax_mhz * 0.9)
        assert not report.meets(report.fmax_mhz * 1.1)

    def test_estimated_vs_routed_delay(self, dev):
        """Timing works pre-routing via the distance estimate."""
        nl = chain_netlist("c", 8)
        placement = place(nl, dev, options=PlacerOptions(steps=15))
        unrouted = Design(nl, dev, placement=placement)
        report = analyze_timing(unrouted)
        assert report.critical_path_ns > 0

    def test_random_netlist_timing(self, dev):
        design = _implemented(random_netlist("r", 80, seed=3), dev)
        report = analyze_timing(design)
        assert report.arc_count > 0
        assert 1.0 < report.critical_path_ns < 1000.0
