"""Tests for the VCD writer/parser and toggle-rate extraction."""

import io

import pytest

from repro.activity.annotate import annotate_netlist
from repro.activity.estimate import ActivityReport, activity_from_vcd, toggle_rates
from repro.activity.vcd import VcdWriter, parse_vcd, vcd_from_simulator
from repro.netlist.generate import chain_netlist
from repro.sim.events import Simulator


def _counter_vcd(cycles: int = 100, period_ps: int = 20_000) -> str:
    sim = Simulator(trace=True)
    clk = sim.clock("clk", period_ns=period_ps / 1000)
    q = sim.signal("q", width=8)
    clk.on_rising_edge(lambda: q.set((q.value + 1) & 0xFF))
    sim.run(ns=cycles * period_ps / 1000)
    out = io.StringIO()
    vcd_from_simulator(sim, out)
    return out.getvalue()


class TestVcdWriter:
    def test_header_and_changes(self):
        out = io.StringIO()
        w = VcdWriter(out)
        w.declare("a", 1)
        w.declare("bus", 8)
        w.change(0, "a", 1)
        w.change(10, "bus", 0xA5)
        text = out.getvalue()
        assert "$enddefinitions" in text
        assert "$var wire 1" in text
        assert "$var wire 8" in text
        assert "#10" in text
        assert "b10100101" in text

    def test_time_must_not_go_backwards(self):
        w = VcdWriter(io.StringIO())
        w.declare("a", 1)
        w.change(10, "a", 1)
        with pytest.raises(ValueError, match="backwards"):
            w.change(5, "a", 0)

    def test_undeclared_variable_raises(self):
        w = VcdWriter(io.StringIO())
        w.declare("a", 1)
        with pytest.raises(KeyError):
            w.change(0, "b", 1)

    def test_declare_after_header_raises(self):
        w = VcdWriter(io.StringIO())
        w.declare("a", 1)
        w.change(0, "a", 1)
        with pytest.raises(ValueError):
            w.declare("b", 1)


class TestVcdRoundtrip:
    def test_simulator_roundtrip(self):
        text = _counter_vcd()
        data = parse_vcd(text)
        assert set(data) == {"clk", "q"}
        width, changes = data["q"]
        assert width == 8
        values = [v for _t, v in changes]
        # Counter counts up monotonically (mod 256).
        assert values[-1] == (len(values) - 1) % 256

    def test_parse_scalar_and_vector(self):
        text = (
            "$timescale 1ps $end\n"
            "$var wire 1 ! a $end\n"
            "$var wire 4 \" b $end\n"
            "$enddefinitions $end\n"
            "#0\n1!\nb1010 \"\n#5\n0!\n"
        )
        data = parse_vcd(text)
        assert data["a"][1] == [(0, 1), (5, 0)]
        assert data["b"][1] == [(0, 10)]

    def test_x_bits_map_to_zero(self):
        text = (
            "$var wire 4 ! b $end\n$enddefinitions $end\n#0\nb1x1z !\n"
        )
        data = parse_vcd(text)
        assert data["b"][1] == [(0, 0b1010)]

    def test_malformed_change_raises(self):
        text = "$var wire 1 ! a $end\n$enddefinitions $end\n#0\n1?\n"
        with pytest.raises(ValueError):
            parse_vcd(text)

    def test_untraced_simulator_rejected(self):
        sim = Simulator(trace=False)
        with pytest.raises(ValueError, match="trace=True"):
            vcd_from_simulator(sim, io.StringIO())


class TestToggleRates:
    def test_counter_activities(self):
        """An 8-bit counter toggles 2 bits/cycle on average -> per-bit
        activity 0.25; the clock's is 2.0."""
        report = activity_from_vcd(_counter_vcd(200), clock_period_ps=20_000)
        assert report.get("clk") == pytest.approx(2.0, rel=0.02)
        assert report.get("q") == pytest.approx(0.25, rel=0.05)

    def test_hottest_ordering(self):
        report = ActivityReport(1000, 100_000, {"a": 0.5, "b": 0.1, "c": 0.9})
        assert [name for name, _v in report.hottest(2)] == ["c", "a"]

    def test_zero_duration_raises(self):
        with pytest.raises(ValueError):
            toggle_rates({"a": (1, [])}, clock_period_ps=1000)

    def test_explicit_window(self):
        data = {"a": (1, [(0, 0), (500, 1), (1500, 0)])}
        report = toggle_rates(data, clock_period_ps=1000, duration_ps=2000)
        assert report.get("a") == pytest.approx(1.0)  # 2 toggles / 2 cycles


class TestAnnotate:
    def test_annotation_matches_by_name(self):
        nl = chain_netlist("c", 4)
        report = ActivityReport(1000, 10_000, {"q0": 0.4, "q2": 0.6})
        matched = annotate_netlist(nl, report, default=0.05)
        assert matched == 2
        assert nl.net("q0").activity == pytest.approx(0.4)
        assert nl.net("q1").activity == pytest.approx(0.05)

    def test_name_map(self):
        nl = chain_netlist("c", 3)
        report = ActivityReport(1000, 10_000, {"top/q0": 0.7})
        annotate_netlist(nl, report, name_map={"q0": "top/q0"})
        assert nl.net("q0").activity == pytest.approx(0.7)

    def test_clock_nets_keep_clock_activity(self):
        from repro.netlist.generate import random_netlist

        nl = random_netlist("r", 30, seed=2)
        report = ActivityReport(1000, 10_000, {})
        annotate_netlist(nl, report)
        clk = [n for n in nl.nets if n.is_clock][0]
        assert clk.activity == 2.0
