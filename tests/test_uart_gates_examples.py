"""Tests for the gate-level UART transmitter, plus smoke tests running
every example's main()."""

import runpy
from pathlib import Path

import pytest

from repro.ip.uart_gates import FRAME_BITS, build_uart_tx
from repro.netlist.logic import FunctionalNetlist
from repro.sim.netlist_sim import NetlistSimulator

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


def _transmit(byte: int, cycles: int = 16):
    fn = FunctionalNetlist("uart")
    data = [fn.input(f"d{i}") for i in range(8)]
    load = fn.input("load")
    tx, busy = build_uart_tx(fn, "u", data, load)
    sim = NetlistSimulator(fn)
    for i in range(8):
        sim.drive(f"d{i}", lambda _c, k=i: (byte >> k) & 1)
    sim.drive("load", lambda c: 1 if c == 0 else 0)
    line = []
    busy_trace = []
    for _ in range(cycles):
        sim.step()
        line.append(sim.values[tx])
        busy_trace.append(sim.values[busy])
    return line, busy_trace


class TestUartTxGates:
    def test_frame_structure(self):
        line, busy = _transmit(0x55)
        # Start bit, 8 data bits LSB first, stop bit, then idle high.
        assert line[0] == 0
        assert line[1:9] == [1, 0, 1, 0, 1, 0, 1, 0]
        assert line[9] == 1
        assert all(bit == 1 for bit in line[10:])

    def test_various_bytes(self):
        for byte in (0x00, 0xFF, 0xA3, 0x01, 0x80):
            line, _busy = _transmit(byte)
            data_bits = line[1:9]
            received = sum(bit << i for i, bit in enumerate(data_bits))
            assert received == byte, hex(byte)
            assert line[0] == 0 and line[9] == 1

    def test_busy_covers_the_frame(self):
        _line, busy = _transmit(0x42)
        assert busy[:FRAME_BITS] == [1] * FRAME_BITS
        assert busy[FRAME_BITS] == 0

    def test_idle_line_is_high(self):
        fn = FunctionalNetlist("uart")
        data = [fn.input(f"d{i}") for i in range(8)]
        load = fn.input("load")
        tx, busy = build_uart_tx(fn, "u", data, load)
        sim = NetlistSimulator(fn)
        sim.run(5)
        assert sim.values[tx] == 1
        assert sim.values[busy] == 0

    def test_wrong_width_rejected(self):
        fn = FunctionalNetlist("uart")
        with pytest.raises(ValueError, match="8 data bits"):
            build_uart_tx(fn, "u", ["a"], "load")

    def test_mux2_primitive(self):
        fn = FunctionalNetlist("m")
        for net in ("s", "a", "b"):
            fn.input(net)
        mux = fn.mux2("y", "s", "a", "b")
        assert mux.evaluate({"s": 1, "a": 1, "b": 0}) == 1
        assert mux.evaluate({"s": 1, "a": 0, "b": 1}) == 0
        assert mux.evaluate({"s": 0, "a": 1, "b": 0}) == 0
        assert mux.evaluate({"s": 0, "a": 0, "b": 1}) == 1


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(example, capsys):
    """Every shipped example executes end to end."""
    runpy.run_path(str(example), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced real output