"""Heavy-tailed load generation: the Zipf per-tank popularity model."""

import pytest

from repro.serve.loadgen import (
    POPULARITIES,
    synthetic_load,
    tank_level,
    zipf_tank_sequence,
)


def test_zipf_sequence_is_deterministic_per_seed():
    first = zipf_tank_sequence(500, 8, seed=4)
    second = zipf_tank_sequence(500, 8, seed=4)
    assert first == second
    assert first != zipf_tank_sequence(500, 8, seed=5)


def test_zipf_sequence_is_heavy_tailed():
    """Rank-0 is the hottest tank and popularity decays with rank; the
    head tanks carry well more than a uniform share of the traffic."""
    seq = zipf_tank_sequence(4000, 10, exponent=1.1, seed=0)
    counts = [seq.count(k) for k in range(10)]
    assert counts[0] == max(counts)
    assert counts[0] > 2 * (len(seq) / 10)  # far above the uniform share
    assert counts[0] > counts[4] > counts[9]
    assert all(0 <= tank < 10 for tank in seq)


def test_zipf_exponent_controls_tail_weight():
    flat = zipf_tank_sequence(3000, 8, exponent=0.2, seed=1)
    steep = zipf_tank_sequence(3000, 8, exponent=2.5, seed=1)
    assert steep.count(0) > flat.count(0)


def test_zipf_validation():
    with pytest.raises(ValueError):
        zipf_tank_sequence(0, 4)
    with pytest.raises(ValueError):
        zipf_tank_sequence(10, 0)
    with pytest.raises(ValueError):
        zipf_tank_sequence(10, 4, exponent=0.0)


def test_synthetic_load_uniform_stays_round_robin():
    """The default popularity keeps the original round-robin pattern —
    the Zipf axis must not perturb existing workloads."""
    requests = synthetic_load(12, n_tanks=4)
    assert [r.tank_id for r in requests] == [f"tank-{i % 4:03d}" for i in range(12)]


def test_synthetic_load_zipf_concentrates_on_hot_tanks():
    requests = synthetic_load(600, n_tanks=6, popularity="zipf", seed=2)
    counts = {}
    for request in requests:
        counts[request.tank_id] = counts.get(request.tank_id, 0) + 1
    assert counts["tank-000"] == max(counts.values())
    assert counts["tank-000"] > 600 / 6


def test_tank_trajectory_is_popularity_independent():
    """A tank's k-th request sees the same level whichever popularity
    model generated the stream: trajectories advance per *tank* request
    count, so services under different load shapes stay comparable."""
    zipf = synthetic_load(300, n_tanks=5, popularity="zipf", seed=7)
    per_tank_levels = {}
    for request in zipf:
        per_tank_levels.setdefault(request.tank_id, []).append(request.level)
    for tank_id, levels in per_tank_levels.items():
        tank = int(tank_id.split("-")[1])
        assert levels == [tank_level(tank, k) for k in range(len(levels))]


def test_synthetic_load_rejects_unknown_popularity():
    assert POPULARITIES == ("uniform", "zipf")
    with pytest.raises(ValueError):
        synthetic_load(4, popularity="bimodal")
