"""Tests for the routing-resource graph and routed-net model."""

import pytest

from repro.fabric.device import get_device
from repro.fabric.routing import RoutedNet, RouteSegment, RoutingGraph
from repro.fabric.wires import DIRECT, DOUBLE, HEX, LONG, PIN_CAPACITANCE_PF


@pytest.fixture
def graph():
    return RoutingGraph(get_device("XC3S200"))


class TestGeometry:
    def test_neighbours_inside(self, graph):
        hops = list(graph.neighbours((10, 10)))
        # 4 directions x (direct, double, hex); span-24 long lines do not
        # fit from the centre of the 20x24 XC3S200 array.
        assert len(hops) == 12

    def test_long_lines_from_edge(self):
        # XC3S400 (28x32): from the origin a long line reaches east
        # (column 24) and north (row 24).
        graph = RoutingGraph(get_device("XC3S400"))
        hops = list(graph.neighbours((0, 0)))
        longs = sorted(d for d, w in hops if w.span == 24)
        assert longs == [(0, 24), (24, 0)]

    def test_neighbours_at_corner(self, graph):
        hops = list(graph.neighbours((0, 0)))
        dests = [d for d, _w in hops]
        assert all(graph.in_bounds(d) for d in dests)
        # Only +x and +y directions available.
        assert all(d[0] >= 0 and d[1] >= 0 for d in dests)

    def test_in_bounds(self, graph):
        dev = graph.device
        assert graph.in_bounds((0, 0))
        assert not graph.in_bounds((-1, 0))
        assert not graph.in_bounds((dev.clb_columns, 0))


class TestOccupancy:
    def test_occupy_release_roundtrip(self, graph):
        seg = RouteSegment(DOUBLE, (3, 3), (5, 3))
        graph.occupy(seg)
        assert graph.usage((3, 3), (5, 3), DOUBLE) == 1
        # The channel is direction-normalised.
        assert graph.usage((5, 3), (3, 3), DOUBLE) == 1
        graph.release(seg)
        assert graph.usage((3, 3), (5, 3), DOUBLE) == 0

    def test_release_unoccupied_raises(self, graph):
        with pytest.raises(ValueError, match="unoccupied"):
            graph.release(RouteSegment(DIRECT, (0, 0), (1, 0)))

    def test_overuse_detection(self, graph):
        seg = RouteSegment(LONG, (0, 0), (0, 24))
        cap = graph.capacity(LONG)
        for _ in range(cap):
            graph.occupy(seg)
        assert graph.is_legal()
        graph.occupy(seg)
        assert not graph.is_legal()
        [(key, overflow)] = graph.overused_channels()
        assert overflow == 1

    def test_congestion_cost_free_channel(self, graph):
        assert graph.congestion_cost((0, 0), (1, 0), DIRECT) == 0.0

    def test_congestion_cost_rises_with_history(self, graph):
        seg = RouteSegment(LONG, (0, 0), (0, 24))
        for _ in range(graph.capacity(LONG) + 1):
            graph.occupy(seg)
        before = graph.congestion_cost((0, 0), (0, 24), LONG)
        graph.bump_history(0.5)
        after = graph.congestion_cost((0, 0), (0, 24), LONG)
        assert after == pytest.approx(before + 0.5)

    def test_reset(self, graph):
        graph.occupy(RouteSegment(DIRECT, (0, 0), (1, 0)))
        graph.bump_history()
        graph.reset()
        assert graph.is_legal()
        assert not graph.history


class TestRoutedNet:
    def test_capacitance(self):
        net = RoutedNet("n", (0, 0), [(2, 0)])
        net.segments = [RouteSegment(DOUBLE, (0, 0), (2, 0))]
        expected = DOUBLE.capacitance_pf + 2 * PIN_CAPACITANCE_PF
        assert net.capacitance_pf == pytest.approx(expected)

    def test_wirelength(self):
        net = RoutedNet("n", (0, 0), [(8, 0)])
        net.segments = [
            RouteSegment(HEX, (0, 0), (6, 0)),
            RouteSegment(DOUBLE, (6, 0), (8, 0)),
        ]
        assert net.wirelength_clbs == 8

    def test_delay_worst_sink(self):
        net = RoutedNet("n", (0, 0), [(1, 0), (3, 0)])
        net.segments = [
            RouteSegment(DIRECT, (0, 0), (1, 0)),
            RouteSegment(DOUBLE, (1, 0), (3, 0)),
        ]
        assert net.delay_ns((1, 0)) == pytest.approx(DIRECT.intrinsic_delay_ns)
        assert net.delay_ns() == pytest.approx(
            DIRECT.intrinsic_delay_ns + DOUBLE.intrinsic_delay_ns
        )

    def test_incomplete_routing_detected(self):
        net = RoutedNet("n", (0, 0), [(5, 5)])
        assert not net.is_complete()
        with pytest.raises(ValueError, match="not reached"):
            net.delay_ns()

    def test_zero_sink_net(self):
        net = RoutedNet("n", (0, 0), [])
        assert net.is_complete()
        assert net.delay_ns() == 0.0
