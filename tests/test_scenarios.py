"""Long-horizon scenario families and the bugs they flushed out.

Covers the PR's three satellites (watchdog wedge, discarded post-recovery
verdict, cal-ROM overflow) plus the scenario machinery itself: priority
broker insertion, wire-codec back-compat, class-aware shedding, the
thermal model/derating, the drift corrector, the per-family differential
oracles with coverage gates, shrinking, and the golden traces.
"""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.app.calibration import CalibrationPoint, CalibrationTable
from repro.app.failsafe import (
    MeasurementWatchdog,
    RecoveryFailedError,
    SelfHealingSystem,
    WatchdogLimits,
)
from repro.scenarios import (
    DriftCorrector,
    DriftScenario,
    check_scenario_golden,
    generate_drift_scenario,
    generate_priority_scenario,
    generate_thermal_scenario,
    run_scenario_oracle,
    shrink_scenario,
)
from repro.scenarios.oracle import drift_reference
from repro.serve.batching import STANDARD_PIPELINE
from repro.serve.requests import (
    KIND_CALIBRATE,
    KIND_MEASURE,
    PRIORITY_ALARM,
    PRIORITY_ROUTINE,
    MeasurementRequest,
    RequestBroker,
    priority_class,
)
from repro.serve.supervisor import AdmissionController
from repro.serve.thermal import DeratingPolicy, ThermalModel, ThermalParams
from repro.shard.wire import request_from_wire, request_to_wire


def _request(rid, tank="tank-000", level=0.5, **kw):
    return MeasurementRequest(
        request_id=rid, tank_id=tank, level=level, pipeline=STANDARD_PIPELINE, **kw
    )


# ------------------------------------------------------- watchdog / recovery


class TestWatchdog:
    def test_rate_only_violation_adopts_new_level(self):
        """Regression: a genuine fast level step used to leave the stale
        level as the rate reference, so every later healthy cycle violated
        too and the self-healing loop scrubbed a clean slot forever."""
        wd = MeasurementWatchdog()
        assert wd.check(100.0, 0.2).plausible
        stepped = wd.check(100.0, 0.8)
        assert not stepped.plausible and len(stepped.violations) == 1
        # The new level became the reference: the next cycle at the new
        # level is plausible again (pre-fix it violated forever).
        assert wd.check(100.0, 0.8).plausible

    def test_combined_violation_keeps_reference(self):
        """A garbled reading (range AND rate wrong) must not become the
        rate reference — only a rate-only step is a credible process."""
        wd = MeasurementWatchdog()
        assert wd.check(100.0, 0.2).plausible
        garbled = wd.check(900.0, 0.8)
        assert len(garbled.violations) == 2
        assert wd.check(100.0, 0.2).plausible  # old reference survived
        assert not wd.check(100.0, 0.8).plausible

    def test_genuine_step_does_not_scrub_loop(self):
        healing = SelfHealingSystem(seed=3)
        healing.run_cycle(0.2)
        healing.run_cycle(0.8)  # genuine step beyond max_level_step
        recoveries_after_step = len(healing.recoveries)
        assert recoveries_after_step <= 1
        for _ in range(5):
            result = healing.run_cycle(0.8)
            assert 0.0 <= result.level_measured <= 1.0
        # No scrub loop: steady operation at the new level recovers nothing.
        assert len(healing.recoveries) == recoveries_after_step

    def test_recover_without_injected_fault_is_soft(self):
        healing = SelfHealingSystem(seed=3)
        healing.run_cycle(0.2)
        healing.run_cycle(0.8)
        if healing.recoveries:
            event = healing.recoveries[0]
            # The guard: with no resident fault there is nothing to scrub
            # a golden against — soft reload only, no scrub time charged.
            assert event.module == "(reload)"
            assert event.recovery_time_s == 0.0

    def test_post_recovery_still_implausible_raises(self):
        """Regression: the retry's verdict used to be discarded, handing a
        garbage measurement downstream as if recovery had worked."""
        limits = WatchdogLimits(capacitance_max_pf=1.0)  # nothing passes
        healing = SelfHealingSystem(limits=limits, seed=3)
        with pytest.raises(RecoveryFailedError) as exc:
            healing.run_cycle(0.5)
        assert not exc.value.verdict.plausible
        assert exc.value.verdict.violations

    def test_injected_fault_recovers(self):
        healing = SelfHealingSystem(seed=5)
        healing.run_cycle(0.5)
        healing.inject_module_fault()
        assert healing.has_active_fault
        result = healing.run_cycle(0.5)
        assert not healing.has_active_fault
        assert healing.recoveries and healing.recoveries[-1].module == "amp_phase"
        assert result.reconfig_time_s >= healing.recoveries[-1].recovery_time_s


# ----------------------------------------------------------------- cal ROM


class TestRomContents:
    def _steep_table(self):
        return CalibrationTable(
            [CalibrationPoint(10.0, 10.0), CalibrationPoint(20.0, 500.0)]
        )

    def test_strict_raises_on_saturation(self):
        """Regression: words past the ROM word width used to ship as-is
        and silently wrap in the block RAM."""
        with pytest.raises(ValueError, match="saturate"):
            self._steep_table().rom_contents(
                depth=16, raw_min_pf=10.0, raw_max_pf=20.0, word_bits=12
            )

    def test_non_strict_clamps_at_word_width(self):
        words = self._steep_table().rom_contents(
            depth=16, raw_min_pf=10.0, raw_max_pf=20.0, word_bits=12, strict=False
        )
        max_word = (1 << 12) - 1
        assert all(0 <= w <= max_word for w in words)
        assert words[-1] == max_word  # the steep end hit the ceiling

    def test_negative_extrapolation_floors_at_zero(self):
        table = CalibrationTable(
            [CalibrationPoint(10.0, 1.0), CalibrationPoint(20.0, 30.0)]
        )
        with pytest.raises(ValueError, match="saturate"):
            table.rom_contents(depth=8, raw_min_pf=0.0, raw_max_pf=20.0)
        words = table.rom_contents(
            depth=8, raw_min_pf=0.0, raw_max_pf=20.0, strict=False
        )
        assert words[0] == 0

    def test_word_width_must_exceed_frac_bits(self):
        with pytest.raises(ValueError, match="word_bits"):
            self._steep_table().rom_contents(
                depth=8, raw_min_pf=10.0, raw_max_pf=20.0, frac_bits=10, word_bits=10
            )

    def test_in_range_table_unchanged(self):
        table = CalibrationTable(
            [CalibrationPoint(40.0, 42.0), CalibrationPoint(80.0, 81.0)]
        )
        words = table.rom_contents(depth=32, raw_min_pf=40.0, raw_max_pf=80.0)
        assert len(words) == 32
        assert words[0] == round(42.0 * 1024)
        assert words[-1] == round(81.0 * 1024)


# --------------------------------------------------------------- priority


class TestPriorityBroker:
    def test_alarm_overtakes_routine_but_not_own_tank(self):
        broker = RequestBroker(capacity=16)
        for rid, tank in ((0, "t0"), (1, "t1"), (2, "t0"), (3, "t1")):
            broker.submit(_request(rid, tank))
        broker.submit(_request(99, "t9", priority=PRIORITY_ALARM))
        broker.submit(_request(100, "t0", priority=PRIORITY_ALARM))
        order = [r.request_id for r in broker._queue]
        # 99 (no same-tank backlog) jumps to the head; 100 overtakes the
        # routines but never its own tank's rid 2.
        assert order == [99, 0, 1, 2, 100, 3]

    def test_all_routine_is_plain_fifo(self):
        broker = RequestBroker(capacity=16)
        for rid in range(6):
            broker.submit(_request(rid, f"t{rid % 2}"))
        assert [r.request_id for r in broker._queue] == list(range(6))

    def test_depth_ahead_of_sees_tier_subset(self):
        broker = RequestBroker(capacity=16)
        for rid in range(4):
            broker.submit(_request(rid, f"t{rid}"))
        broker.submit(_request(9, "t9", priority=PRIORITY_ALARM))
        assert broker.depth_ahead_of(PRIORITY_ALARM) == 1
        assert broker.depth_ahead_of(PRIORITY_ROUTINE) == 5

    def test_request_validation(self):
        with pytest.raises(ValueError):
            _request(0, priority=-1)
        with pytest.raises(ValueError):
            _request(0, kind="bogus")
        assert priority_class(PRIORITY_ALARM) == "alarm"
        assert priority_class(PRIORITY_ROUTINE) == "routine"

    def test_wire_round_trip_carries_priority_and_kind(self):
        request = _request(7, "t3", priority=PRIORITY_ALARM, kind=KIND_CALIBRATE)
        decoded = request_from_wire(request_to_wire(request))
        assert decoded.priority == PRIORITY_ALARM
        assert decoded.kind == KIND_CALIBRATE

    def test_wire_decode_of_legacy_request_defaults(self):
        """Frames from a pre-tier peer carry neither field; they must
        decode as routine measurements, not explode."""
        data = request_to_wire(_request(7, "t3"))
        data.pop("priority")
        data.pop("kind")
        decoded = request_from_wire(data)
        assert decoded.priority == PRIORITY_ROUTINE
        assert decoded.kind == KIND_MEASURE

    def test_shed_alarm_implies_shed_routine(self):
        """The class-aware invariant: with effective (tier-subset) depths
        an alarm is never shed while an equal-deadline routine request
        would be admitted."""
        admission = AdmissionController(workers=1)
        admission.observe_batch(1, 1.0)  # 1 s per request
        broker = RequestBroker(capacity=16)
        for rid in range(5):
            broker.submit(_request(rid, f"t{rid}"))
        broker.submit(_request(9, "t9", priority=PRIORITY_ALARM))
        now, deadline = 100.0, 103.0
        routine_depth = broker.depth_ahead_of(PRIORITY_ROUTINE)
        alarm_depth = broker.depth_ahead_of(PRIORITY_ALARM)
        assert admission.should_shed(deadline, now, routine_depth, PRIORITY_ROUTINE)
        assert not admission.should_shed(deadline, now, alarm_depth, PRIORITY_ALARM)
        # An already-expired submit still flows through (answered expired).
        assert not admission.should_shed(now - 1.0, now, routine_depth)


# ----------------------------------------------------------------- thermal


class TestThermal:
    def test_step_size_never_changes_trajectory(self):
        params = ThermalParams(ambient_c=25.0, r_theta_c_per_w=40.0, tau_s=0.5)
        one, two = ThermalModel(params), ThermalModel(params)
        one.advance(2.0, 1.0)
        one.advance(2.0, 1.0)
        two.advance(2.0, 2.0)
        assert math.isclose(one.temperature_c, two.temperature_c, rel_tol=1e-12)

    def test_converges_to_thermal_target(self):
        model = ThermalModel(ThermalParams(25.0, 40.0, 0.5))
        for _ in range(100):
            model.advance(2.0, 1.0)
        assert math.isclose(model.temperature_c, 25.0 + 2.0 * 40.0, rel_tol=1e-6)

    def test_runaway_clamps_at_shutdown(self):
        """Leakage doubles per 25 degC, so an undamped loop runs away until
        ``2**((T-25)/25)`` overflows; the junction clamps at the
        over-temperature shutdown point instead."""
        model = ThermalModel(ThermalParams(50.0, 1000.0, 0.01))
        for _ in range(50):
            model.advance(100.0, 1.0)
        assert model.temperature_c <= ThermalParams().shutdown_c
        assert math.isclose(
            model.temperature_c, ThermalParams().shutdown_c, rel_tol=1e-9
        )

    def test_derating_scale(self):
        policy = DeratingPolicy(derate_at_c=60.0, max_at_c=85.0, min_fraction=0.25)
        assert policy.scale(59.0) == 1.0
        assert policy.scale(60.0) == 1.0
        assert policy.scale(90.0) == 0.25
        assert math.isclose(policy.scale(72.5), 0.625, rel_tol=1e-12)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            ThermalParams(tau_s=0.0)
        with pytest.raises(ValueError):
            ThermalParams(ambient_c=130.0, shutdown_c=125.0)
        with pytest.raises(ValueError):
            DeratingPolicy(derate_at_c=90.0, max_at_c=85.0)
        with pytest.raises(ValueError):
            DeratingPolicy(min_fraction=0.0)


# ------------------------------------------------------------------- drift


def _handcrafted_drift(recalibrate: bool) -> DriftScenario:
    tank = "tank-000"
    entries = []
    for t in range(21):
        if t == 10 and recalibrate:
            entries.append((tank, 0.5, KIND_CALIBRATE))
        else:
            entries.append((tank, 0.3 + 0.02 * (t % 5), KIND_MEASURE))
    return DriftScenario(
        seed=5,
        entries=tuple(entries),
        drift_rates=((tank, 0.004),),
        noise_rms=0.0,
    )


class TestDrift:
    def test_corrector_is_deterministic(self):
        scenario = generate_drift_scenario(3)
        first = drift_reference(scenario)
        second = drift_reference(scenario)
        assert first == second

    def test_recalibration_reduces_residual(self):
        """The family's reason to exist: without recalibration the
        installation-time table mis-maps late drifted readings; a mid-run
        recalibration pulls them back to truth."""
        drifting = _handcrafted_drift(recalibrate=True)
        control = _handcrafted_drift(recalibrate=False)

        def late_error(scenario):
            expected = drift_reference(scenario)
            truth = {i: lv for i, (_t, lv, k) in enumerate(scenario.entries)
                     if k == KIND_MEASURE}
            late = [rid for rid in truth if rid > 10]
            return sum(abs(expected[rid][0] - truth[rid]) for rid in late) / len(late)

        # The mid-run recalibration roughly halves the accumulated-drift
        # error over the late window (drift keeps accruing after it, so
        # the residual never reaches zero).
        assert late_error(drifting) < 0.75 * late_error(control)

    def test_scenario_validation(self):
        with pytest.raises(ValueError, match="drift rate"):
            DriftScenario(
                seed=0,
                entries=(("tank-000", 0.5, KIND_MEASURE),),
                drift_rates=(("other", 0.001),),
            )
        with pytest.raises(ValueError, match="kind"):
            DriftScenario(
                seed=0,
                entries=(("tank-000", 0.5, "bogus"),),
                drift_rates=(("tank-000", 0.001),),
            )

    def test_generated_scenarios_always_recalibrate(self):
        for seed in range(12):
            assert generate_drift_scenario(seed).calibrate_ids()


# -------------------------------------------------- oracle / shrink / golden


class TestScenarioOracle:
    def test_drift_family_exact_with_coverage(self):
        report = run_scenario_oracle("drift", [3])
        assert report.ok, report.violations
        assert report.checks[0].coverage["recalibrations"] >= 1
        assert report.max_deviation()["level"] == 0.0
        assert report.max_deviation()["capacitance_pf"] == 0.0

    def test_thermal_family_exact_with_coverage(self):
        report = run_scenario_oracle("thermal", [3])
        assert report.ok, report.violations
        coverage = report.checks[0].coverage
        assert coverage["hottest_c"] > report.checks[0].scenario.derate_at_c
        assert coverage["derate_events"] >= 1

    def test_priority_family_exact_with_coverage(self):
        report = run_scenario_oracle("priority", [3])
        assert report.ok, report.violations
        coverage = report.checks[0].coverage
        assert coverage["overtakes"] >= 1
        assert coverage["alarm_latencies_recorded"] == coverage["alarms"]

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError, match="family"):
            run_scenario_oracle("voltage", [0])

    def test_shrink_minimizes_failing_scenario(self):
        scenario = generate_priority_scenario(3)
        assert scenario.n_requests > 4
        shrunk = shrink_scenario(scenario, lambda s: s.n_requests >= 4)
        assert shrunk.n_requests == 4

    def test_shrink_rejects_passing_scenario(self):
        scenario = generate_thermal_scenario(3)
        with pytest.raises(ValueError, match="failing"):
            shrink_scenario(scenario, lambda s: False)

    def test_shrink_skips_invalid_candidates(self):
        # drop-one candidates of a 1-entry scenario would be invalid; the
        # drift family's single-tank variants can also break the rate map.
        scenario = generate_drift_scenario(5)
        shrunk = shrink_scenario(scenario, lambda s: s.n_requests >= 1)
        assert shrunk.n_requests == 1


def test_scenario_golden_traces_match():
    assert check_scenario_golden() == []
