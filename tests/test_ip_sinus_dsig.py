"""Tests for the sinus generator and delta-sigma converters (§4.1)."""

import numpy as np
import pytest

from repro.ip.delta_sigma import (
    ADC_FOOTPRINT,
    DAC_FOOTPRINT,
    DAC_FOOTPRINT_WITH_OPB,
    DeltaSigmaAdc,
    DeltaSigmaDac,
    RcLowPass,
)
from repro.ip.sinus import LUT_DEPTH, SINUS_LUT_VALUES, SinusGenerator


class TestSinusGenerator:
    def test_paper_parameters(self):
        """32 LUT entries at 16 MHz produce the 500 kHz tone."""
        sg = SinusGenerator()
        assert LUT_DEPTH == 32
        assert sg.sample_rate_hz == 16_000_000
        assert sg.tone_hz == pytest.approx(500_000.0)

    def test_lut_values_are_8bit_sine(self):
        assert len(SINUS_LUT_VALUES) == 32
        assert all(0 <= v <= 255 for v in SINUS_LUT_VALUES)
        assert max(SINUS_LUT_VALUES) >= 250
        assert min(SINUS_LUT_VALUES) <= 5
        # Quarter-wave symmetry of a sampled sine.
        assert SINUS_LUT_VALUES[8] == max(SINUS_LUT_VALUES)

    def test_periodicity(self):
        sg = SinusGenerator()
        x = sg.digital_samples(96)
        assert np.array_equal(x[:32], x[32:64])

    def test_normalized_range(self):
        sg = SinusGenerator(amplitude=0.5)
        x = sg.normalized_samples(64)
        assert np.max(np.abs(x)) <= 0.5 + 1e-9

    def test_fundamental_bin(self):
        sg = SinusGenerator()
        x = sg.normalized_samples(320)  # 10 periods
        spec = np.abs(np.fft.rfft(x))
        assert np.argmax(spec[1:]) + 1 == 10  # energy in the 10-period bin

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            SinusGenerator().digital_samples(-1)

    def test_footprint_matches_paper_scale(self):
        """Sinus generator + internal DAC ~ paper's 'ca. 150 slices'."""
        from repro.ip.sinus import SINUS_FOOTPRINT

        total = SINUS_FOOTPRINT.slices + DAC_FOOTPRINT.slices
        assert 100 <= total <= 200


class TestRcLowPass:
    def test_passes_dc(self):
        f = RcLowPass(1000.0, 1_000_000.0, order=1)
        out = f.filter(np.ones(5000))
        assert out[-1] == pytest.approx(1.0, abs=0.01)

    def test_attenuates_high_frequency(self):
        fs = 10_000_000.0
        f = RcLowPass(100_000.0, fs, order=2)
        t = np.arange(4096) / fs
        low = f.filter(np.sin(2 * np.pi * 50_000 * t))
        high = f.filter(np.sin(2 * np.pi * 2_000_000 * t))
        assert np.std(high[2000:]) < 0.15 * np.std(low[2000:])

    def test_validation(self):
        with pytest.raises(ValueError):
            RcLowPass(0.0, 1e6)
        with pytest.raises(ValueError):
            RcLowPass(1e3, 1e6, order=0)


class TestDeltaSigmaDac:
    def test_tone_survives(self):
        """The paper's Fourier-analysis check: the DAC 'could run with a
        frequency high enough to generate a 500 kHz sinus signal'."""
        sg = SinusGenerator(amplitude=0.7)
        dac = DeltaSigmaDac()
        analog = dac.convert(sg.normalized_samples(1600))  # 50 periods
        spec = np.abs(np.fft.rfft(analog * np.hanning(analog.size)))
        freqs = np.fft.rfftfreq(analog.size, 1.0 / dac.modulator_hz)
        peak = freqs[np.argmax(spec[1:]) + 1]
        assert peak == pytest.approx(500_000.0, rel=0.02)

    def test_modulator_output_is_one_bit(self):
        dac = DeltaSigmaDac()
        bits = dac.modulate(np.zeros(16))
        assert set(np.unique(bits)) <= {-1.0, 1.0}

    def test_oversampling_ratio(self):
        dac = DeltaSigmaDac(modulator_hz=64e6, input_rate_hz=16e6)
        assert dac.oversampling == 4
        assert dac.modulate(np.zeros(10)).size == 40

    def test_overrange_input_rejected(self):
        dac = DeltaSigmaDac()
        with pytest.raises(ValueError, match="0.9"):
            dac.modulate(np.array([0.95]))

    def test_slow_modulator_rejected(self):
        with pytest.raises(ValueError, match="at least as fast"):
            DeltaSigmaDac(modulator_hz=8e6, input_rate_hz=16e6)

    def test_opb_interface_removal_saves_slices(self):
        """'the interface was not required and was therefore removed to
        save resources.'"""
        assert DAC_FOOTPRINT.slices < DAC_FOOTPRINT_WITH_OPB.slices


class TestDeltaSigmaAdc:
    def test_dc_accuracy(self):
        adc = DeltaSigmaAdc(decimation=64)
        out = adc.convert(np.full(64 * 200, 0.4))
        assert out[-1] == pytest.approx(0.4, abs=0.03)

    def test_tone_recovery(self):
        fs = 64e6
        f = 500e3
        t = np.arange(int(fs * 200e-6)) / fs
        adc = DeltaSigmaAdc(decimation=16)
        out = adc.convert(0.5 * np.sin(2 * np.pi * f * t))
        out = out[len(out) // 2 :]
        spec = np.abs(np.fft.rfft(out * np.hanning(out.size)))
        freqs = np.fft.rfftfreq(out.size, 1.0 / adc.output_rate_hz)
        peak = freqs[np.argmax(spec[1:]) + 1]
        assert peak == pytest.approx(f, rel=0.05)

    def test_output_rate(self):
        adc = DeltaSigmaAdc(modulator_hz=64e6, decimation=16)
        assert adc.output_rate_hz == pytest.approx(4e6)

    def test_bad_decimation_rejected(self):
        with pytest.raises(ValueError):
            DeltaSigmaAdc(decimation=1)

    def test_footprint_positive(self):
        assert ADC_FOOTPRINT.slices > 50
