"""Tests for the methodology-level APIs (repro.core)."""

import pytest

from repro.app.modules import build_processing_graph, repartitioned_modules, standard_modules
from repro.app.system import (
    FpgaReconfigSystem,
    FpgaSoftwareSystem,
    MicrocontrollerSystem,
    frontend_slices,
    static_side_slices,
)
from repro.core.integration import analyze_converter_integration
from repro.core.par_power import run_power_aware_flow
from repro.core.reconfig_power import (
    partition_study,
    power_vs_clock,
    reconfig_overhead_report,
    size_devices,
)
from repro.core.tradeoff import SystemVariant, compare_variants, format_table
from repro.fabric.device import get_device
from repro.netlist.generate import random_netlist
from repro.par.placer import PlacerOptions
from repro.reconfig.controller import ReconfigController
from repro.reconfig.ports import Icap, Jcap
from repro.reconfig.slots import plan_floorplan
from repro.sysgen.compile import split_into_modules


class TestIntegration:
    def test_bom_and_power_savings(self):
        """§4.1: integrating the converters cuts BOM cost, and on-demand
        configuration makes their power negligible."""
        report = analyze_converter_integration()
        assert report.bom_saving_usd > 5.0
        assert report.integrated_power_mw < report.external_power_mw
        assert report.on_demand_power_mw < 0.01 * report.integrated_power_mw

    def test_opb_removal_accounted(self):
        report = analyze_converter_integration()
        assert report.opb_interface_slices_saved == 60

    def test_duty_validation(self):
        with pytest.raises(ValueError):
            analyze_converter_integration(sampling_duty=0.0)

    def test_summary_text(self):
        assert "Section 4.1" in analyze_converter_integration().summary()


class TestReconfigPower:
    @pytest.fixture(scope="class")
    def modules(self):
        return [m.compiled for m in standard_modules().values()]

    def test_size_devices_chain(self, modules):
        """The conclusions' chain: flat > 6000 slices -> XC3S1000; 1 slot
        -> XC3S400; 5 modules -> XC3S200."""
        from repro.ip.ethernet import ETHERNET_FOOTPRINT
        from repro.ip.profibus import PROFIBUS_FOOTPRINT

        result = size_devices(
            static_slices=static_side_slices(),
            resident_slices=ETHERNET_FOOTPRINT.slices + PROFIBUS_FOOTPRINT.slices,
            modules=modules,
            repartitioned=repartitioned_modules(5),
        )
        assert result.flat_slices > 6000
        assert result.flat_device.name == "XC3S1000"
        assert result.one_slot_device.name == "XC3S400"
        assert result.multi_slot_device.name == "XC3S200"
        assert result.static_power_saving_w > 0
        assert result.cost_saving_usd > 0
        assert "XC3S1000" in result.summary()

    def test_power_vs_clock_tradeoff(self):
        points = power_vs_clock(
            module_slices=2400,
            frame_samples=512,
            latency_cycles=50,
            device=get_device("XC3S400"),
            clocks_mhz=[10, 25, 50, 75],
        )
        dynamics = [p.dynamic_power_w for p in points]
        assert dynamics == sorted(dynamics)  # power rises with clock
        assert all(p.meets_deadline for p in points)  # hw is fast enough even at 10 MHz

    def test_empty_clock_list_rejected(self):
        with pytest.raises(ValueError):
            power_vs_clock(100, 512, 10, get_device("XC3S400"), [])

    def test_overhead_report(self, modules):
        def factory(port):
            plan = plan_floorplan(get_device("XC3S400"), static_side_slices(), [2500])
            controller = ReconfigController(plan, port)
            for name in ("frontend", "amp_phase", "capacity", "filter"):
                controller.prepare_module(name, 0)
            return controller

        report = reconfig_overhead_report(factory, ["frontend", "amp_phase", "capacity", "filter"])
        assert report.fits("ICAP")
        assert not report.fits("JCAP(improved)")
        assert not report.fits("JCAP(basic)")
        assert report.total_time_s("JCAP(basic)") > report.total_time_s("JCAP(improved)")
        assert "EXCEEDS" in report.summary()

    def test_partition_study_monotone(self):
        graph = build_processing_graph()
        study = partition_study(
            lambda n: split_into_modules(graph, n),
            static_slices=static_side_slices(),
            counts=[1, 3, 5],
        )
        assert study.max_module_slices[0] > study.max_module_slices[-1]
        # More partitions never need a bigger device.
        sizes = [get_device(d).slices for d in study.devices]
        assert sizes == sorted(sizes, reverse=True)


class TestParPowerFlow:
    def test_flow_end_to_end(self):
        netlist = random_netlist("flow", 90, seed=21)
        result = run_power_aware_flow(
            netlist,
            get_device("XC3S200"),
            clock_mhz=50.0,
            top_n=5,
            placer_options=PlacerOptions(steps=12),
        )
        assert result.power_after.routing_w <= result.power_before.routing_w
        assert len(result.optimization.records) == 5
        assert "Reduction" in result.table2()

    def test_netlist_too_big_rejected(self):
        netlist = random_netlist("big", 900, seed=1)
        with pytest.raises(ValueError):
            run_power_aware_flow(
                netlist, get_device("XC3S50"), clock_mhz=50.0,
                placer_options=PlacerOptions(steps=2),
            )


class TestTradeoff:
    def test_compare_and_format(self):
        variants = [
            SystemVariant("mcu", MicrocontrollerSystem()),
            SystemVariant("fpga-sw", FpgaSoftwareSystem()),
        ]
        rows = compare_variants(variants, levels=[0.5])
        assert len(rows) == 2
        assert rows[0].label == "mcu"
        table = format_table(rows)
        assert "variant" in table and "mcu" in table

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            compare_variants([])
        with pytest.raises(ValueError):
            compare_variants([SystemVariant("m", MicrocontrollerSystem())], levels=[])
