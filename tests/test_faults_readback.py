"""Tests for fault injection, readback scrubbing, and the self-healing
measurement system (the paper's 'failure detection and recovery'
requirement)."""

import random

import pytest

from repro.app.failsafe import (
    MeasurementWatchdog,
    RecoveryEvent,
    SelfHealingSystem,
    WatchdogLimits,
)
from repro.fabric.bitstream import BitstreamGenerator
from repro.fabric.device import get_device
from repro.fabric.faults import ConfigurationMemory
from repro.fabric.grid import Grid
from repro.reconfig.ports import Icap, Jcap
from repro.reconfig.readback import ReadbackScrubber, frame_crc


@pytest.fixture
def loaded_memory():
    dev = get_device("XC3S400")
    gen = BitstreamGenerator(dev)
    bitstream = gen.partial_for_region(Grid(dev).column_region(8, 12), "amp_phase")
    memory = ConfigurationMemory()
    memory.load(bitstream)
    return memory, bitstream


class TestFaultInjection:
    def test_seu_changes_exactly_one_bit(self, loaded_memory):
        memory, bitstream = loaded_memory
        before = {f.address: f.words for f in memory.readback()}
        fault = memory.inject_seu(random.Random(1))
        after = {f.address: f.words for f in memory.readback()}
        diffs = [
            (addr, i)
            for addr in before
            for i in range(len(before[addr]))
            if before[addr][i] != after[addr][i]
        ]
        assert len(diffs) == 1
        addr, word = diffs[0]
        assert addr == fault.frame_address and word == fault.word_index
        assert bin(before[addr][word] ^ after[addr][word]).count("1") == 1

    def test_inject_into_empty_memory_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ConfigurationMemory().inject_seu()

    def test_corrupted_frames_detection(self, loaded_memory):
        memory, bitstream = loaded_memory
        assert memory.corrupted_frames(bitstream) == []
        fault = memory.inject_seu(random.Random(2))
        assert memory.corrupted_frames(bitstream) == [fault.frame_address]

    def test_deterministic_injection(self, loaded_memory):
        memory, _bs = loaded_memory
        addr = sorted(memory._frames)[0]
        memory.inject_at(addr, 0, 5)
        memory.inject_at(addr, 0, 5)  # flipping twice restores
        assert memory.corrupted_frames(_bs) == []

    def test_bad_bit_index_rejected(self, loaded_memory):
        memory, _bs = loaded_memory
        addr = sorted(memory._frames)[0]
        with pytest.raises(ValueError):
            memory.inject_at(addr, 0, 32)

    def test_readback_unconfigured_frame(self):
        with pytest.raises(KeyError):
            ConfigurationMemory().frame(0x1234)


class TestScrubber:
    def test_clean_scrub(self, loaded_memory):
        memory, bitstream = loaded_memory
        scrubber = ReadbackScrubber(memory, Icap())
        scrubber.register_golden(bitstream)
        report = scrubber.scrub()
        assert report.clean
        assert report.frames_checked == bitstream.frame_count
        assert report.repair_time_s == 0.0
        assert report.readback_time_s > 0

    def test_detects_and_repairs(self, loaded_memory):
        memory, bitstream = loaded_memory
        scrubber = ReadbackScrubber(memory, Icap())
        scrubber.register_golden(bitstream)
        fault = memory.inject_seu(random.Random(3))
        report = scrubber.scrub(repair=True)
        assert report.corrupted_frames == [fault.frame_address]
        assert report.repaired_frames == [fault.frame_address]
        # After repair the memory is clean again.
        assert scrubber.scrub().clean
        assert memory.corrupted_frames(bitstream) == []

    def test_detect_without_repair(self, loaded_memory):
        memory, bitstream = loaded_memory
        scrubber = ReadbackScrubber(memory, Icap())
        scrubber.register_golden(bitstream)
        memory.inject_seu(random.Random(4))
        report = scrubber.scrub(repair=False)
        assert not report.clean
        assert report.repaired_frames == []
        assert not scrubber.scrub(repair=False).clean  # still corrupted

    def test_repair_much_cheaper_than_readback_pass(self, loaded_memory):
        """Scrubbing repairs one frame; a full load rewrites them all."""
        memory, bitstream = loaded_memory
        scrubber = ReadbackScrubber(memory, Icap())
        scrubber.register_golden(bitstream)
        memory.inject_seu(random.Random(5))
        report = scrubber.scrub()
        assert report.repair_time_s < report.readback_time_s / 10

    def test_no_golden_rejected(self, loaded_memory):
        memory, _bs = loaded_memory
        with pytest.raises(ValueError, match="golden"):
            ReadbackScrubber(memory, Icap()).scrub()

    def test_detection_latency(self, loaded_memory):
        memory, bitstream = loaded_memory
        scrubber = ReadbackScrubber(memory, Jcap())
        scrubber.register_golden(bitstream)
        latency = scrubber.mean_detection_latency_s(scrub_period_s=1.0)
        assert latency > 0.5  # half the period at least
        with pytest.raises(ValueError):
            scrubber.mean_detection_latency_s(0.0)

    def test_frame_crc_sensitive(self, loaded_memory):
        memory, bitstream = loaded_memory
        frame = bitstream.frames[0]
        from repro.fabric.bitstream import Frame

        flipped = Frame(frame.address, (frame.words[0] ^ 1,) + frame.words[1:])
        assert frame_crc(frame) != frame_crc(flipped)


class TestWatchdog:
    def test_plausible_cycle_passes(self):
        wd = MeasurementWatchdog()
        verdict = wd.check(capacitance_pf=300.0, level=0.55)
        assert verdict.plausible

    def test_capacitance_range(self):
        wd = MeasurementWatchdog()
        assert not wd.check(5000.0, 0.5).plausible
        assert not wd.check(1.0, 0.5).plausible

    def test_level_range(self):
        wd = MeasurementWatchdog()
        assert not wd.check(300.0, 1.8).plausible

    def test_rate_of_change(self):
        wd = MeasurementWatchdog(WatchdogLimits(max_level_step=0.1))
        assert wd.check(200.0, 0.30).plausible
        assert not wd.check(350.0, 0.80).plausible  # 0.5 jump
        # A rate-only step is a credible process change (fast pump): the
        # new level becomes the reference, so the loop re-converges
        # instead of wedging on the stale one (see tests/test_scenarios).
        assert wd.check(350.0, 0.80).plausible
        # A *garbled* reading (range AND rate wrong) must not poison the
        # state: the reference stays at the last adopted level.
        assert not wd.check(5000.0, 0.30).plausible
        assert wd.check(350.0, 0.75).plausible

    def test_reference_health(self):
        wd = MeasurementWatchdog()
        assert not wd.check(300.0, 0.5, ref_amplitude=0.001).plausible

    def test_reset(self):
        wd = MeasurementWatchdog(WatchdogLimits(max_level_step=0.1))
        wd.check(200.0, 0.2)
        wd.reset()
        assert wd.check(400.0, 0.9).plausible


class TestSelfHealingSystem:
    @pytest.fixture(scope="class")
    def healing(self):
        return SelfHealingSystem(seed=7)

    def test_normal_operation_untouched(self, healing):
        result = healing.run_cycle(0.5)
        assert abs(result.level_measured - 0.5) < 0.05
        assert not healing.recoveries

    def test_fault_detected_and_recovered(self):
        healing = SelfHealingSystem(seed=8)
        healing.run_cycle(0.5)  # establish watchdog state
        fault = healing.inject_module_fault("amp_phase")
        assert healing.has_active_fault
        result = healing.run_cycle(0.5)
        # Recovery happened and the re-measurement is correct.
        assert len(healing.recoveries) == 1
        event = healing.recoveries[0]
        assert event.module == "amp_phase"
        assert event.recovery_time_s > 0
        assert not healing.has_active_fault
        assert abs(result.level_measured - 0.5) < 0.05
        assert result.reconfig_time_s > event.recovery_time_s

    def test_unknown_module_rejected(self):
        healing = SelfHealingSystem(seed=9)
        with pytest.raises(KeyError):
            healing.inject_module_fault("ghost")

    def test_operation_continues_after_recovery(self):
        healing = SelfHealingSystem(seed=10)
        healing.run_cycle(0.4)
        healing.inject_module_fault()
        healing.run_cycle(0.4)
        follow_up = healing.run_cycle(0.45)
        assert abs(follow_up.level_measured - 0.45) < 0.06
        assert len(healing.recoveries) == 1
