"""Tests for bitstream relocation, on-demand interfaces, and automatic
partitioning (the extension features)."""

import pytest

from repro.app.interfaces import INTERFACE_FOOTPRINTS, InterfaceManager
from repro.app.modules import build_processing_graph
from repro.app.system import static_side_slices
from repro.core.autopartition import auto_partition
from repro.fabric.bitstream import Bitstream, BitstreamGenerator
from repro.fabric.device import get_device
from repro.fabric.grid import Grid, Region
from repro.reconfig.ports import Icap, Jcap
from repro.reconfig.relocation import RelocationError, check_compatible, relocate, store_savings


@pytest.fixture
def dev():
    return get_device("XC3S1000")


class TestRelocation:
    def test_relocated_frames_shift_columns(self, dev):
        gen = BitstreamGenerator(dev)
        grid = Grid(dev)
        source = grid.column_region(8, 12)
        target = grid.column_region(20, 24)
        bs = gen.partial_for_region(source, "amp_phase")
        moved = relocate(bs, source, target, dev)
        assert moved.frame_count == bs.frame_count
        for old, new in zip(bs.frames, moved.frames):
            assert (new.address >> 8) == (old.address >> 8) + 12
            assert (new.address & 0xFF) == (old.address & 0xFF)
            assert new.words == old.words

    def test_roundtrip_is_identity(self, dev):
        gen = BitstreamGenerator(dev)
        grid = Grid(dev)
        a = grid.column_region(4, 7)
        b = grid.column_region(30, 33)
        bs = gen.partial_for_region(a, "m")
        back = relocate(relocate(bs, a, b, dev), b, a, dev)
        assert [f.address for f in back.frames] == [f.address for f in bs.frames]

    def test_relocated_bitstream_still_parses(self, dev):
        gen = BitstreamGenerator(dev)
        grid = Grid(dev)
        bs = gen.partial_for_region(grid.column_region(0, 3), "m")
        moved = relocate(bs, grid.column_region(0, 3), grid.column_region(10, 13), dev)
        parsed = Bitstream.from_bytes(moved.to_bytes(), dev.name)
        assert parsed.frame_count == moved.frame_count

    def test_width_mismatch_rejected(self, dev):
        grid = Grid(dev)
        with pytest.raises(RelocationError, match="widths differ"):
            check_compatible(grid.column_region(0, 3), grid.column_region(10, 14), dev)

    def test_off_device_target_rejected(self, dev):
        grid = Grid(dev)
        source = grid.column_region(0, 3)
        target = Region(dev.clb_columns - 2, 0, dev.clb_columns + 1, dev.clb_rows - 1)
        with pytest.raises(RelocationError):
            check_compatible(source, target, dev)

    def test_non_aligned_rejected(self, dev):
        source = Region(0, 1, 3, dev.clb_rows - 1)
        target = Region(8, 1, 11, dev.clb_rows - 1)
        with pytest.raises(RelocationError, match="column aligned"):
            check_compatible(source, target, dev)

    def test_frame_outside_source_rejected(self, dev):
        gen = BitstreamGenerator(dev)
        grid = Grid(dev)
        bs = gen.partial_for_region(grid.column_region(0, 3), "m")
        with pytest.raises(RelocationError, match="outside source"):
            relocate(bs, grid.column_region(1, 4), grid.column_region(10, 13), dev)

    def test_store_savings(self):
        s = store_savings(modules=4, slots=3, per_image_bytes=100_000)
        assert s.per_slot_bytes == 1_200_000
        assert s.relocatable_bytes == 400_000
        assert s.saved_bytes == 800_000
        with pytest.raises(ValueError):
            store_savings(0, 1, 1)


class TestInterfaceManager:
    @pytest.fixture(scope="class")
    def manager(self):
        return InterfaceManager(port=Icap())

    def test_switching_loads_core(self, manager):
        t = manager.switch_to("ethernet")
        assert manager.active_interface == "ethernet"
        assert t > 0

    def test_resident_switch_is_free(self, manager):
        manager.switch_to("profibus")
        assert manager.switch_to("profibus") == 0.0

    def test_report_over_each_interface(self):
        manager = InterfaceManager(port=Icap())
        for interface in ("uart", "ethernet", "profibus"):
            record = manager.report_level(0.42, interface=interface)
            assert record.interface == interface
            assert record.wire_time_s > 0
        assert len(manager.reports) == 3

    def test_unknown_interface_rejected(self, manager):
        with pytest.raises(KeyError, match="unknown interface"):
            manager.switch_to("canbus")

    def test_report_without_interface_rejected(self):
        manager = InterfaceManager(port=Icap())
        with pytest.raises(ValueError, match="no interface"):
            manager.report_level(0.5)

    def test_area_saving_vs_flat(self, manager):
        """One slot instead of all interfaces resident — the 'flexibility
        regarding communication interfaces' pay-off."""
        assert manager.flat_area_slices() > sum(
            fp.slices for name, fp in INTERFACE_FOOTPRINTS.items() if name == "ethernet"
        )
        # The slot is sized for the largest single interface only.
        largest = max(fp.slices for fp in INTERFACE_FOOTPRINTS.values())
        assert manager.resident_area_slices() < manager.flat_area_slices() + largest
        assert manager.flat_area_slices() == sum(
            fp.slices for fp in INTERFACE_FOOTPRINTS.values()
        )


class TestAutoPartition:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_processing_graph()

    def test_finds_feasible_optimum(self, graph):
        result = auto_partition(graph, static_side_slices(), counts=(1, 2, 3, 5))
        assert result.best is not None
        assert result.best.feasible
        # Power objective picks the smallest feasible device.
        powers = [c.static_power_w for c in result.candidates if c.feasible]
        assert result.best.static_power_w == min(powers)

    def test_jcap_budget_rules_out_designs(self, graph):
        """Over the slow JCAP most partitionings miss the overhead budget —
        the automated version of the paper's caveat."""
        icap = auto_partition(graph, static_side_slices(), counts=(1, 3, 5), port=Icap())
        jcap = auto_partition(
            graph, static_side_slices(), counts=(1, 3, 5), port=Jcap(improved=True)
        )
        icap_ok = sum(c.feasible for c in icap.candidates)
        jcap_ok = sum(c.feasible for c in jcap.candidates)
        assert icap_ok > jcap_ok

    def test_objectives(self, graph):
        for objective in ("power", "cost", "speed"):
            result = auto_partition(
                graph, static_side_slices(), counts=(1, 3, 5), objective=objective
            )
            assert result.objective == objective
            assert result.best is not None

    def test_speed_objective_prefers_fewer_loads(self, graph):
        result = auto_partition(graph, static_side_slices(), counts=(1, 3, 5), objective="speed")
        times = [c.reconfig_time_per_cycle_s for c in result.candidates if c.feasible]
        assert result.best.reconfig_time_per_cycle_s == min(times)

    def test_pareto_front_nonempty(self, graph):
        result = auto_partition(graph, static_side_slices(), counts=(1, 2, 3, 5, 7))
        front = result.pareto_front()
        assert front
        # Every front member is feasible and non-dominated.
        for c in front:
            assert c.feasible

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            auto_partition(graph, 100, counts=())
        with pytest.raises(ValueError):
            auto_partition(graph, 100, counts=(1,), objective="area")
