"""Tests for routing wire types — the electrical ordering the paper's
§4.3 methodology rests on."""

import pytest

from repro.fabric.wires import (
    CHANNEL_CAPACITY,
    DIRECT,
    DOUBLE,
    HEX,
    LONG,
    WIRE_TYPES,
    wire_type_by_name,
)


class TestWireOrdering:
    def test_spans(self):
        assert [w.span for w in WIRE_TYPES] == [1, 2, 6, 24]

    def test_longer_wires_have_more_capacitance(self):
        caps = [w.capacitance_pf for w in WIRE_TYPES]
        assert caps == sorted(caps)

    def test_paper_premise_shorter_wires_cost_less_power_per_clb(self):
        """Using multiple shorter lines instead of one long line reduces
        switched capacitance (paper §4.3 / reference [12])."""
        assert DIRECT.capacitance_per_clb_pf < LONG.capacitance_per_clb_pf
        assert DOUBLE.capacitance_per_clb_pf < LONG.capacitance_per_clb_pf
        # Covering one long line's span with direct segments switches less
        # capacitance than the long line itself.
        assert LONG.span * DIRECT.capacitance_pf < LONG.capacitance_pf

    def test_performance_premise_longer_wires_are_faster_per_clb(self):
        """Long lines give higher performance (fewer buffered hops)."""
        assert LONG.delay_per_clb_ns < HEX.delay_per_clb_ns < DOUBLE.delay_per_clb_ns
        assert DOUBLE.delay_per_clb_ns < DIRECT.delay_per_clb_ns

    def test_channel_capacity_covers_all_types(self):
        assert set(CHANNEL_CAPACITY) == {w.name for w in WIRE_TYPES}
        assert all(c > 0 for c in CHANNEL_CAPACITY.values())


class TestLookup:
    def test_by_name(self):
        assert wire_type_by_name("direct") is DIRECT
        assert wire_type_by_name("LONG") is LONG

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown wire type"):
            wire_type_by_name("quad")
