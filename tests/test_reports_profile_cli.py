"""Tests for the implementation reports, power profiling, clock gating,
runtime adaptation and the CLI."""

import io

import pytest

from repro.activity.vcd import parse_vcd, vcd_from_simulator
from repro.app.adaptation import AdaptiveProcessingManager, build_variants
from repro.app.system import FpgaReconfigSystem
from repro.cli import main as cli_main
from repro.fabric.device import get_device
from repro.netlist.generate import random_netlist
from repro.par.design import Design
from repro.par.placer import PlacerOptions, place
from repro.par.report import floorplan_view, routing_report, utilization_report
from repro.par.router import route
from repro.power.profile import power_profile
from repro.reconfig.ports import Icap
from repro.sim.events import Simulator


@pytest.fixture(scope="module")
def design():
    dev = get_device("XC3S200")
    nl = random_netlist("rep", 60, seed=3)
    placement = place(nl, dev, options=PlacerOptions(steps=10))
    routing = route(nl, placement, dev)
    return Design(nl, dev, placement=placement, routed_nets=routing.nets, graph=routing.graph)


class TestReports:
    def test_utilization(self, design):
        report = utilization_report(design)
        assert report.slices_used == design.netlist.stats().slices
        assert 0 < report.slice_utilization < 1
        text = report.render()
        assert "Occupied slices" in text and "XC3S200" in text

    def test_routing_report(self, design):
        text = routing_report(design)
        assert "direct" in text and "long" in text
        assert "over-capacity channels: 0" in text

    def test_routing_report_needs_routing(self):
        dev = get_device("XC3S200")
        nl = random_netlist("x", 10, seed=1)
        placement = place(nl, dev, options=PlacerOptions(steps=2))
        with pytest.raises(ValueError):
            routing_report(Design(nl, dev, placement=placement))

    def test_floorplan_view(self, design):
        text = floorplan_view(design)
        lines = text.splitlines()
        assert len(lines) == design.device.clb_rows + 1
        body = "".join(lines[1:])
        # Occupied cells appear; the design does not fill the device.
        assert any(c in "1234#" for c in body)
        assert "." in body


class TestPowerProfile:
    def _trace(self):
        sim = Simulator(trace=True)
        clk = sim.clock("clk", period_ns=20)
        burst = sim.signal("burst", width=8)
        state = {"count": 0}

        def tick():
            state["count"] += 1
            # Active only in the first half of the run.
            if state["count"] < 250:
                burst.set((burst.value + 1) & 0xFF)

        clk.on_rising_edge(tick)
        sim.run(us=10)
        out = io.StringIO()
        vcd_from_simulator(sim, out)
        return parse_vcd(out.getvalue())

    def test_profile_sees_the_burst(self):
        data = self._trace()
        profile = power_profile(
            data,
            capacitances_pf={"burst": 2.0},
            clock_period_ps=20_000,
            window_ps=1_000_000,
        )
        assert len(profile.samples) == 10
        first_half = sum(s.power_w for s in profile.samples[:5])
        second_half = sum(s.power_w for s in profile.samples[5:])
        assert first_half > 5 * second_half
        assert profile.peak_w > profile.average_w
        assert profile.peak_to_average > 1.5

    def test_render(self):
        data = self._trace()
        profile = power_profile(data, {"burst": 2.0}, 20_000, 2_000_000)
        text = profile.render()
        assert "uW" in text and "#" in text

    def test_validation(self):
        data = self._trace()
        with pytest.raises(ValueError):
            power_profile(data, {}, 20_000, 1_000_000)
        with pytest.raises(ValueError):
            power_profile(data, {"burst": 1.0}, 20_000, 0)


class TestClockGating:
    def test_gating_reduces_power(self):
        plain = FpgaReconfigSystem(port=Icap())
        gated = FpgaReconfigSystem(port=Icap(), clock_gating=True)
        p_plain = plain.run_cycle(0.5).avg_power_w
        p_gated = gated.run_cycle(0.5).avg_power_w
        assert p_gated < p_plain
        # Results identical — gating is transparent to function.
        plain.reset(), gated.reset()
        assert plain.run_cycle(0.5).level_measured == pytest.approx(
            gated.run_cycle(0.5).level_measured
        )


class TestAdaptation:
    @pytest.fixture(scope="class")
    def manager(self):
        return AdaptiveProcessingManager(seed=5)

    def test_variant_catalogue(self):
        variants = build_variants()
        assert set(variants) == {"precise", "balanced", "fast"}
        assert variants["precise"].compiled.slices > variants["fast"].compiled.slices
        assert variants["precise"].processing_time_s(75.0) > variants["fast"].processing_time_s(75.0)
        assert variants["precise"].processing_energy_j(75.0) > variants["fast"].processing_energy_j(75.0)

    def test_policy_accuracy_dominates(self, manager):
        assert manager.select(accuracy_target=0.01) == "precise"
        assert manager.select(accuracy_target=0.08) == "fast"

    def test_policy_power_budget(self, manager):
        tiny = manager.variants["fast"].processing_energy_j(75.0) / 0.1
        assert manager.select(power_budget_w=tiny * 0.5) == "fast"
        assert manager.select(power_budget_w=1.0) == "precise"

    def test_switching_costs_reconfiguration(self, manager):
        t1 = manager.switch_to("precise")
        t2 = manager.switch_to("precise")
        assert t1 > 0 and t2 == 0.0
        t3 = manager.switch_to("fast")
        assert t3 > 0

    def test_longer_frames_average_noise_better(self):
        """The mechanism behind the precise variant: a 512-sample frame
        averages measurement noise ~2x better than a 128-sample frame
        (estimator std ~ 1/sqrt(N)).  Tested deterministically on
        synthetic noisy tones."""
        import numpy as np

        from repro.app.dsp import amplitude_phase

        rng = np.random.default_rng(0)
        fs, f = 4e6, 500e3

        def amp_std(n_frame, trials=40):
            amps = []
            for _ in range(trials):
                t = np.arange(n_frame) / fs
                x = 0.2 * np.sin(2 * np.pi * f * t) + rng.normal(0, 0.02, n_frame)
                amps.append(amplitude_phase(x, f, fs)[0])
            return np.std(amps)

        assert amp_std(512) < 0.7 * amp_std(128)

    def test_all_variants_measure_plausibly(self):
        manager = AdaptiveProcessingManager(seed=6)
        for name in ("precise", "balanced", "fast"):
            for level in (0.3, 0.6, 0.8):
                record = manager.measure(level, variant=name)
                assert abs(record.level - level) < 0.08
        # And the precise variant stays within the tight envelope.
        errors = [
            abs(manager.measure(level, variant="precise").level - level)
            for level in (0.25, 0.5, 0.75)
        ]
        assert max(errors) < 0.05

    def test_unknown_variant_rejected(self, manager):
        with pytest.raises(KeyError):
            manager.switch_to("turbo")


class TestCli:
    def test_sizing(self, capsys):
        assert cli_main(["sizing"]) == 0
        out = capsys.readouterr().out
        assert "amp_phase" in out and "XC3S1000" in out

    def test_cycle(self, capsys):
        assert cli_main(["cycle", "--level", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "measured" in out and "sample signals" in out

    def test_cycle_with_gating(self, capsys):
        assert cli_main(["cycle", "--level", "0.4", "--clock-gating"]) == 0

    def test_recover(self, capsys):
        assert cli_main(["recover"]) == 0
        out = capsys.readouterr().out
        assert "injected" in out and "recovered" in out

    def test_parflow(self, capsys):
        assert cli_main(["parflow", "--slices", "60", "--nets", "3"]) == 0
        out = capsys.readouterr().out
        assert "utilization" in out and "Reduction" in out

    def test_bad_command(self):
        with pytest.raises(SystemExit):
            cli_main(["frobnicate"])
