"""Tests for the §4.3 net reallocation optimizer — the paper's Table 2
mechanism."""

import pytest

from repro.fabric.device import get_device
from repro.netlist.generate import random_netlist
from repro.par.design import Design
from repro.par.placer import PlacerOptions, place
from repro.par.power_opt import (
    NetOptimizationRecord,
    optimize_nets,
    optimize_single_net,
)
from repro.par.router import RouterOptions, route
from repro.power.model import PowerParams, switching_power_w


@pytest.fixture
def design():
    dev = get_device("XC3S200")
    nl = random_netlist("r", 120, seed=11)
    placement = place(nl, dev, options=PlacerOptions(steps=15, seed=2))
    routing = route(nl, placement, dev)
    return Design(nl, dev, placement=placement, routed_nets=routing.nets, graph=routing.graph)


def _routing_power(design, clock=50.0):
    params = PowerParams()
    return sum(
        switching_power_w(design.routed_nets[n.name].capacitance_pf, n.activity, clock)
        for n in design.netlist.nets
        if not n.is_clock and n.name in design.routed_nets
    )


class TestOptimizeSingleNet:
    def test_never_increases_net_power_without_acceptance(self, design):
        """'After every reallocation process it was verified that the
        dynamic power consumption had decreased and not increased.'"""
        before_total = _routing_power(design)
        net = max(
            (n for n in design.netlist.nets if not n.is_clock), key=lambda n: n.activity
        )
        record = optimize_single_net(design, net, clock_mhz=50.0)
        after_total = _routing_power(design)
        assert after_total <= before_total + 1e-12
        assert record.power_before_uw >= 0

    def test_routing_stays_legal(self, design):
        net = max(
            (n for n in design.netlist.nets if not n.is_clock), key=lambda n: n.activity
        )
        optimize_single_net(design, net, clock_mhz=50.0)
        assert design.graph.is_legal()
        for n in design.netlist.nets:
            if not n.is_clock:
                assert design.routed_nets[n.name].is_complete()

    def test_record_reduction_pct(self):
        r = NetOptimizationRecord("n", 0.2, power_before_uw=100.0, power_after_uw=44.0)
        assert r.reduction_pct == pytest.approx(56.0)

    def test_zero_before_power(self):
        r = NetOptimizationRecord("n", 0.0, power_before_uw=0.0, power_after_uw=0.0)
        assert r.reduction_pct == 0.0


class TestOptimizeNets:
    def test_reduces_total_routing_power(self, design):
        result = optimize_nets(design, clock_mhz=50.0, top_n=8)
        assert result.routing_power_after_w <= result.routing_power_before_w
        assert len(result.records) == 8

    def test_activity_ordering(self, design):
        result = optimize_nets(design, clock_mhz=50.0, top_n=5, order="activity")
        activities = [r.activity for r in result.records]
        assert activities == sorted(activities, reverse=True)

    def test_unknown_order_rejected(self, design):
        with pytest.raises(ValueError, match="unknown order"):
            optimize_nets(design, clock_mhz=50.0, order="alphabetical")

    def test_unrouted_design_rejected(self):
        dev = get_device("XC3S200")
        nl = random_netlist("r", 30, seed=1)
        placement = place(nl, dev, options=PlacerOptions(steps=5))
        design = Design(nl, dev, placement=placement)
        with pytest.raises(ValueError, match="not routed"):
            optimize_nets(design, clock_mhz=50.0)

    def test_table_format(self, design):
        result = optimize_nets(design, clock_mhz=50.0, top_n=3)
        table = result.table()
        assert "Signal net" in table
        assert "Reduction" in table
        assert len(table.splitlines()) == 4
