"""Tests for the power models and the design-level estimator."""

import pytest

from repro.fabric.device import get_device
from repro.fabric.routing import RoutedNet, RouteSegment
from repro.fabric.wires import DOUBLE
from repro.netlist.generate import random_netlist
from repro.par.design import Design
from repro.par.placer import PlacerOptions, place
from repro.par.router import route
from repro.power.estimator import PowerEstimator
from repro.power.model import (
    PowerParams,
    block_dynamic_power_w,
    clock_tree_power_w,
    net_dynamic_power_w,
    static_power_w,
    switching_power_w,
)


class TestSwitchingModel:
    def test_formula(self):
        # 0.5 * alpha * f * C * V^2 = 0.5 * 0.2 * 50e6 * 1e-12 * 1.44
        p = switching_power_w(1.0, 0.2, 50.0, 1.2)
        assert p == pytest.approx(0.5 * 0.2 * 50e6 * 1e-12 * 1.44)

    def test_linear_in_each_factor(self):
        base = switching_power_w(1.0, 0.1, 50.0)
        assert switching_power_w(2.0, 0.1, 50.0) == pytest.approx(2 * base)
        assert switching_power_w(1.0, 0.2, 50.0) == pytest.approx(2 * base)
        assert switching_power_w(1.0, 0.1, 100.0) == pytest.approx(2 * base)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            switching_power_w(-1.0, 0.1, 50.0)

    def test_net_dynamic_power(self):
        net = RoutedNet("n", (0, 0), [(2, 0)])
        net.segments = [RouteSegment(DOUBLE, (0, 0), (2, 0))]
        p = net_dynamic_power_w(net, 0.3, 50.0)
        assert p == pytest.approx(switching_power_w(net.capacitance_pf, 0.3, 50.0))


class TestStaticModel:
    def test_scales_with_device(self):
        small = static_power_w(get_device("XC3S200"))
        large = static_power_w(get_device("XC3S1000"))
        assert large > 2 * small

    def test_temperature_doubling(self):
        dev = get_device("XC3S400")
        cold = static_power_w(dev, PowerParams(temperature_c=25.0))
        hot = static_power_w(dev, PowerParams(temperature_c=50.0))
        assert hot == pytest.approx(2 * cold)

    def test_voltage_scaling(self):
        dev = get_device("XC3S400")
        nominal = static_power_w(dev)
        reduced = static_power_w(dev, PowerParams(vccint=1.08))
        assert reduced == pytest.approx(nominal * 0.81)

    def test_bad_voltage_rejected(self):
        with pytest.raises(ValueError):
            PowerParams(vccint=0.0)


class TestBlockAndClock:
    def test_block_power_scales_with_slices(self):
        assert block_dynamic_power_w(200, 0.1, 50.0) == pytest.approx(
            2 * block_dynamic_power_w(100, 0.1, 50.0)
        )

    def test_clock_tree_power_scales_with_load(self):
        dev = get_device("XC3S400")
        light = clock_tree_power_w(dev, 100, 50.0)
        heavy = clock_tree_power_w(dev, 3000, 50.0)
        assert heavy > light

    def test_negative_slices_rejected(self):
        with pytest.raises(ValueError):
            block_dynamic_power_w(-1, 0.1, 50.0)


class TestEstimator:
    @pytest.fixture
    def design(self):
        dev = get_device("XC3S200")
        nl = random_netlist("r", 60, seed=1)
        placement = place(nl, dev, options=PlacerOptions(steps=15))
        routing = route(nl, placement, dev)
        return Design(nl, dev, placement=placement, routed_nets=routing.nets, graph=routing.graph)

    def test_report_totals_consistent(self, design):
        report = PowerEstimator(design, 50.0).report()
        assert report.total_w == pytest.approx(report.static_w + report.dynamic_w)
        assert report.dynamic_w == pytest.approx(
            report.routing_w + report.logic_w + report.clock_w
        )

    def test_power_scales_with_clock(self, design):
        slow = PowerEstimator(design, 25.0).report()
        fast = PowerEstimator(design, 50.0).report()
        assert fast.dynamic_w == pytest.approx(2 * slow.dynamic_w, rel=1e-6)
        assert fast.static_w == pytest.approx(slow.static_w)

    def test_hottest_nets_sorted(self, design):
        report = PowerEstimator(design, 50.0).report()
        hottest = report.hottest_nets(5)
        powers = [n.total_w for n in hottest]
        assert powers == sorted(powers, reverse=True)

    def test_unrouted_fallback(self):
        dev = get_device("XC3S200")
        nl = random_netlist("r", 30, seed=2)
        placement = place(nl, dev, options=PlacerOptions(steps=5))
        design = Design(nl, dev, placement=placement)
        report = PowerEstimator(design, 50.0).report()
        assert report.routing_w > 0

    def test_bad_clock_rejected(self, design):
        with pytest.raises(ValueError):
            PowerEstimator(design, 0.0)

    def test_summary_format(self, design):
        text = PowerEstimator(design, 50.0).report().summary()
        assert "static" in text and "dynamic" in text and "mW" in text
