"""The sharded fleet: wire codec, hash ring, router, crash recovery.

Process-spawning tests keep the workloads small (tens of requests, one
or two shard processes) — the contracts under test are routing totality,
wire round-trip exactness, merged metrics arithmetic, and the zero-loss
kill/restart path, none of which need volume.
"""

import io

import pytest

from repro.serve.loadgen import synthetic_load
from repro.serve.requests import (
    BrokerFullError,
    MeasurementRequest,
    MeasurementResponse,
)
from repro.shard import (
    ConsistentHashRing,
    ShardConfig,
    ShardRouter,
    WireError,
    decode,
    encode,
    read_frame,
    request_from_wire,
    request_to_wire,
    response_from_wire,
    response_to_wire,
    write_frame,
)
from repro.shard.wire import KIND_SUBMIT, WIRE_VERSION


# ------------------------------------------------------------------ wire codec


def test_request_wire_roundtrip_is_exact():
    request = MeasurementRequest(
        request_id=41,
        tank_id="tank-007",
        level=0.123456789012345678,  # shortest-repr floats survive JSON
        pipeline=("frontend", "amp_phase", "capacity", "filter"),
        deadline_s=12.5,
        max_attempts=5,
        attempts=2,
        submitted_at=3.25,
        not_before_s=0.5,
    )
    rebuilt = request_from_wire(request_to_wire(request))
    for field in (
        "request_id",
        "tank_id",
        "level",
        "pipeline",
        "deadline_s",
        "max_attempts",
        "attempts",
        "submitted_at",
        "not_before_s",
    ):
        assert getattr(rebuilt, field) == getattr(request, field)


def test_response_wire_roundtrip_is_exact():
    response = MeasurementResponse(
        request_id=9,
        tank_id="tank-001",
        status="ok",
        level_measured=0.6000000000000001,
        capacitance_pf=312.0781249999999,
        energy_j=1.25e-4,
        device_time_s=0.0123,
        latency_s=0.5,
        attempts=1,
        worker="worker-0",
        batch_id=3,
        batch_size=4,
    )
    rebuilt = response_from_wire(response_to_wire(response))
    assert rebuilt == response


def test_envelope_rejects_unknown_version_and_kind():
    data = encode(KIND_SUBMIT, {"request": {}})
    kind, payload = decode(data)
    assert kind == KIND_SUBMIT and payload == {"request": {}}

    with pytest.raises(WireError):
        encode("teleport", {})
    with pytest.raises(WireError):
        decode(b"not json at all")
    with pytest.raises(WireError):
        decode(b'{"v": %d, "kind": "teleport", "payload": {}}' % WIRE_VERSION)
    with pytest.raises(WireError):
        decode(b'{"v": 99, "kind": "submit", "payload": {}}')
    with pytest.raises(WireError):
        decode(b'{"v": %d, "kind": "submit", "payload": 3}' % WIRE_VERSION)


def test_malformed_request_payload_raises_wire_error():
    with pytest.raises(WireError):
        request_from_wire({"request_id": 1})  # missing required fields
    with pytest.raises(WireError):
        request_from_wire(
            {"request_id": 1, "tank_id": "t", "level": 2.5, "pipeline": ["frontend"]}
        )  # level out of range: model validation re-runs on decode


def test_frame_roundtrip_eof_and_truncation():
    stream = io.BytesIO()
    write_frame(stream, b"alpha")
    write_frame(stream, b"")
    stream.seek(0)
    assert read_frame(stream) == b"alpha"
    assert read_frame(stream) == b""
    assert read_frame(stream) is None  # clean EOF

    stream = io.BytesIO(b"\x00\x00\x00\x10onlyfour")
    with pytest.raises(WireError):
        read_frame(stream)  # truncated body
    with pytest.raises(WireError):
        read_frame(io.BytesIO(b"\x00\x00"))  # truncated prefix
    with pytest.raises(WireError):
        read_frame(io.BytesIO(b"\xff\xff\xff\xff"))  # absurd length prefix


# ------------------------------------------------------------------- hash ring


def test_ring_routes_every_key_to_a_member_deterministically():
    ring = ConsistentHashRing(range(4))
    again = ConsistentHashRing(range(4))
    keys = [f"tank-{i:03d}" for i in range(200)]
    for key in keys:
        assert ring.lookup(key) in (0, 1, 2, 3)
        assert ring.lookup(key) == again.lookup(key)  # process-independent


def test_ring_removal_only_remaps_the_removed_shards_keys():
    ring = ConsistentHashRing(range(4))
    keys = [f"tank-{i:03d}" for i in range(300)]
    before = {key: ring.lookup(key) for key in keys}
    ring.remove_shard(2)
    for key in keys:
        after = ring.lookup(key)
        if before[key] != 2:
            assert after == before[key]  # untouched arcs keep their owner
        else:
            assert after != 2


def test_ring_distribution_reports_every_shard():
    ring = ConsistentHashRing(range(3), replicas=128)
    counts = ring.distribution([f"tank-{i:03d}" for i in range(600)])
    assert set(counts) == {0, 1, 2}
    assert sum(counts.values()) == 600
    assert all(count > 0 for count in counts.values())


def test_ring_validation():
    with pytest.raises(ValueError):
        ConsistentHashRing([])
    with pytest.raises(ValueError):
        ConsistentHashRing([0], replicas=0)
    ring = ConsistentHashRing([0, 1])
    with pytest.raises(KeyError):
        ring.remove_shard(7)
    ring.remove_shard(1)
    with pytest.raises(ValueError):
        ring.remove_shard(0)  # never an empty ring


# ------------------------------------------------------------------ the router


def _serve(router, requests, timeout_s=60.0):
    accepted, rejected = router.submit_many(requests)
    assert router.await_responses(accepted, timeout_s=timeout_s)
    return accepted, rejected


def test_router_serves_all_requests_with_tank_affinity():
    config = ShardConfig(shards=2, seed=3, supervise=False)
    router = ShardRouter(config).start()
    try:
        requests = synthetic_load(40, n_tanks=6, seed=1)
        accepted, rejected = _serve(router, requests)
        assert (accepted, rejected) == (40, [])
        responses = router.responses()
        assert sorted(r.request_id for r in responses) == list(range(40))
        assert all(r.status == "ok" for r in responses)
        snapshot = router.metrics_snapshot()
    finally:
        assert router.shutdown()
    assert snapshot["service"]["shards"] == 2
    assert snapshot["counters"]["requests_served"] == 40
    # Both shards did real work and the per-shard counts add back up.
    per_shard = [s["requests_served"] for s in snapshot["shards"].values()]
    assert sum(per_shard) == 40 and all(count > 0 for count in per_shard)
    # Merged percentiles come from real reservoirs, not summary guesses.
    assert snapshot["histograms"]["latency_s"]["count"] == 40
    assert snapshot["histograms"]["latency_s"]["p95"] is not None


def test_router_backpressure_bounds_inflight_per_shard():
    config = ShardConfig(shards=1, queue_capacity=4, supervise=False)
    router = ShardRouter(config).start()
    try:
        requests = synthetic_load(12, n_tanks=1, seed=0)
        accepted, rejected = router.submit_many(requests)
        assert accepted <= 8  # capacity plus whatever already completed
        assert len(rejected) == 12 - accepted
        with pytest.raises(RuntimeError):
            router.kill_shard(7)  # unknown shard ids raise KeyError below
    except KeyError:
        pass
    finally:
        router.shutdown()


def test_duplicate_request_id_is_refused():
    config = ShardConfig(shards=1, supervise=False)
    router = ShardRouter(config).start()
    try:
        request = synthetic_load(1, n_tanks=1)[0]
        router.submit(request)
        with pytest.raises(ValueError):
            router.submit(request)
    finally:
        router.shutdown()


def test_killed_shard_recovers_with_zero_loss():
    """SIGKILL the busiest shard mid-run: the supervisor restarts the
    process, re-delivers its in-flight table, and every accepted request
    still gets exactly one terminal response."""
    config = ShardConfig(
        shards=2, seed=5, queue_capacity=256, heartbeat_interval_s=0.02
    )
    router = ShardRouter(config).start()
    try:
        requests = synthetic_load(120, n_tanks=8, seed=2)
        accepted, rejected = router.submit_many(requests)
        assert (accepted, len(rejected)) == (120, 0)
        router.await_responses(20, timeout_s=60.0)  # let some work finish
        victim = max(router.inflight_by_shard().items(), key=lambda kv: kv[1])[0]
        router.kill_shard(victim)
        assert router.await_responses(120, timeout_s=60.0)
        responses = router.responses()
        assert sorted(r.request_id for r in responses) == list(range(120))
        assert all(r.status == "ok" for r in responses)
        assert router.restarts.get(victim) == 1
        assert router.metrics.counter("requests_redelivered") > 0
    finally:
        router.shutdown()


def test_sharded_path_exactly_equals_single_process():
    from repro.verifylab import check_scenario_sharded, generate_scenario

    check = check_scenario_sharded(generate_scenario(11), shards=2)
    assert check.compared == check.scenario.n_requests
    assert check.ok, check.violations


def test_shard_chaos_campaign_loses_nothing():
    from repro.verifylab import run_shard_chaos_campaign

    report = run_shard_chaos_campaign(requests=24, seed=3, shards=2, kills=1)
    assert report["ok"], report
    assert report["terminal_rate"] == 1.0
    assert report["responses"]["ok"] == 24
    assert report["recovery"]["shard_restarts"] >= 1
    assert report["integrity"]["matching"] == report["integrity"]["checked"] == 24
