"""The sharded fleet: wire codec, hash ring, router, crash recovery.

Process-spawning tests keep the workloads small (tens of requests, one
or two shard processes) — the contracts under test are routing totality,
wire round-trip exactness, merged metrics arithmetic, and the zero-loss
kill/restart path, none of which need volume.
"""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.loadgen import synthetic_load
from repro.serve.requests import (
    BrokerFullError,
    MeasurementRequest,
    MeasurementResponse,
)
from repro.shard import (
    ConsistentHashRing,
    ShardConfig,
    ShardRouter,
    WireError,
    decode,
    encode,
    read_frame,
    request_from_wire,
    request_to_wire,
    response_from_wire,
    response_to_wire,
    write_frame,
)
from repro.shard.wire import (
    KIND_RESPONSE,
    KIND_RESTORE,
    KIND_SUBMIT,
    KNOWN_KINDS,
    WIRE_VERSION,
)


# ------------------------------------------------------------------ wire codec


def test_request_wire_roundtrip_is_exact():
    request = MeasurementRequest(
        request_id=41,
        tank_id="tank-007",
        level=0.123456789012345678,  # shortest-repr floats survive JSON
        pipeline=("frontend", "amp_phase", "capacity", "filter"),
        deadline_s=12.5,
        max_attempts=5,
        attempts=2,
        submitted_at=3.25,
        not_before_s=0.5,
    )
    rebuilt = request_from_wire(request_to_wire(request))
    for field in (
        "request_id",
        "tank_id",
        "level",
        "pipeline",
        "deadline_s",
        "max_attempts",
        "attempts",
        "submitted_at",
        "not_before_s",
    ):
        assert getattr(rebuilt, field) == getattr(request, field)


def test_response_wire_roundtrip_is_exact():
    response = MeasurementResponse(
        request_id=9,
        tank_id="tank-001",
        status="ok",
        level_measured=0.6000000000000001,
        capacitance_pf=312.0781249999999,
        energy_j=1.25e-4,
        device_time_s=0.0123,
        latency_s=0.5,
        attempts=1,
        worker="worker-0",
        batch_id=3,
        batch_size=4,
    )
    rebuilt = response_from_wire(response_to_wire(response))
    assert rebuilt == response


def test_envelope_rejects_unknown_version_and_kind():
    data = encode(KIND_SUBMIT, {"request": {}})
    kind, payload = decode(data)
    assert kind == KIND_SUBMIT and payload == {"request": {}}

    with pytest.raises(WireError):
        encode("teleport", {})
    with pytest.raises(WireError):
        decode(b"not json at all")
    with pytest.raises(WireError):
        decode(b'{"v": %d, "kind": "teleport", "payload": {}}' % WIRE_VERSION)
    with pytest.raises(WireError):
        decode(b'{"v": 99, "kind": "submit", "payload": {}}')
    with pytest.raises(WireError):
        decode(b'{"v": %d, "kind": "submit", "payload": 3}' % WIRE_VERSION)


def test_malformed_request_payload_raises_wire_error():
    with pytest.raises(WireError):
        request_from_wire({"request_id": 1})  # missing required fields
    with pytest.raises(WireError):
        request_from_wire(
            {"request_id": 1, "tank_id": "t", "level": 2.5, "pipeline": ["frontend"]}
        )  # level out of range: model validation re-runs on decode


def test_frame_roundtrip_eof_and_truncation():
    stream = io.BytesIO()
    write_frame(stream, b"alpha")
    write_frame(stream, b"")
    stream.seek(0)
    assert read_frame(stream) == b"alpha"
    assert read_frame(stream) == b""
    assert read_frame(stream) is None  # clean EOF

    stream = io.BytesIO(b"\x00\x00\x00\x10onlyfour")
    with pytest.raises(WireError):
        read_frame(stream)  # truncated body
    with pytest.raises(WireError):
        read_frame(io.BytesIO(b"\x00\x00"))  # truncated prefix
    with pytest.raises(WireError):
        read_frame(io.BytesIO(b"\xff\xff\xff\xff"))  # absurd length prefix


# ------------------------------------------------------- wire codec fuzzing
#
# The differential oracle compares shard output to a single-process run
# with EXACT float equality, so the codec must be a bijection over the
# model fields for arbitrary values — not just the friendly ones in the
# hand-written cases above.  And a router that half-parses corrupt bytes
# orphans every in-flight entry mapped to that connection, so malformed
# input must surface as ``WireError``, never as junk data or a foreign
# exception type.

_finite = st.floats(allow_nan=False, allow_infinity=False)

_fuzz_requests = st.builds(
    MeasurementRequest,
    request_id=st.integers(min_value=0, max_value=2**63),
    tank_id=st.text(max_size=24),
    level=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    pipeline=st.lists(st.text(min_size=1, max_size=12), min_size=1, max_size=6).map(
        tuple
    ),
    deadline_s=st.none() | _finite,
    max_attempts=st.integers(min_value=1, max_value=50),
    attempts=st.integers(min_value=0, max_value=50),
    submitted_at=_finite,
    not_before_s=_finite,
)

_fuzz_responses = st.builds(
    MeasurementResponse,
    request_id=st.integers(min_value=0, max_value=2**63),
    tank_id=st.text(max_size=24),
    status=st.sampled_from(["ok", "failed", "rejected", "expired"]),
    level_measured=st.none() | _finite,
    capacitance_pf=st.none() | _finite,
    energy_j=_finite,
    device_time_s=_finite,
    latency_s=_finite,
    attempts=st.integers(min_value=0, max_value=50),
    worker=st.none() | st.integers(min_value=0, max_value=64),
    batch_id=st.none() | st.integers(min_value=0, max_value=2**32),
    batch_size=st.integers(min_value=0, max_value=64),
    error=st.text(max_size=40),
)


def _frame_roundtrip(data: bytes) -> bytes:
    """Push ``data`` through the length-prefixed stream layer."""
    stream = io.BytesIO()
    write_frame(stream, data)
    stream.seek(0)
    out = read_frame(stream)
    assert read_frame(stream) is None  # nothing left over
    return out


@settings(max_examples=75, deadline=None)
@given(request=_fuzz_requests)
def test_fuzz_submit_envelope_roundtrips_bit_exactly(request):
    data = encode(KIND_SUBMIT, {"request": request_to_wire(request)})
    kind, payload = decode(_frame_roundtrip(data))
    assert kind == KIND_SUBMIT
    assert request_from_wire(payload["request"]) == request


@settings(max_examples=50, deadline=None)
@given(requests=st.lists(_fuzz_requests, min_size=1, max_size=5))
def test_fuzz_restore_envelope_roundtrips_bit_exactly(requests):
    data = encode(
        KIND_RESTORE, {"requests": [request_to_wire(r) for r in requests]}
    )
    kind, payload = decode(_frame_roundtrip(data))
    assert kind == KIND_RESTORE
    assert [request_from_wire(r) for r in payload["requests"]] == requests


@settings(max_examples=50, deadline=None)
@given(responses=st.lists(_fuzz_responses, min_size=1, max_size=5))
def test_fuzz_responses_envelope_roundtrips_bit_exactly(responses):
    data = encode(
        KIND_RESPONSE, {"responses": [response_to_wire(r) for r in responses]}
    )
    kind, payload = decode(_frame_roundtrip(data))
    assert kind == KIND_RESPONSE
    assert [response_from_wire(r) for r in payload["responses"]] == responses


@settings(max_examples=75, deadline=None)
@given(request=_fuzz_requests, data=st.data())
def test_fuzz_truncated_frames_raise_instead_of_half_parsing(request, data):
    """Any strict prefix of a framed message either reads as clean EOF
    (zero bytes) or raises ``WireError`` — ``read_frame`` never hands
    back a partial frame for ``decode`` to misinterpret."""
    stream = io.BytesIO()
    write_frame(stream, encode(KIND_SUBMIT, {"request": request_to_wire(request)}))
    raw = stream.getvalue()
    cut = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
    truncated = io.BytesIO(raw[:cut])
    if cut == 0:
        assert read_frame(truncated) is None
    else:
        with pytest.raises(WireError):
            read_frame(truncated)


@settings(max_examples=100, deadline=None)
@given(blob=st.binary(max_size=256))
def test_fuzz_arbitrary_bytes_decode_cleanly_or_raise_wire_error(blob):
    """Garbage on the wire raises exactly ``WireError``; in the
    astronomically unlikely event the bytes happen to be a valid
    envelope, the result is still a (known kind, dict) pair."""
    try:
        kind, payload = decode(blob)
    except WireError:
        return
    assert kind in KNOWN_KINDS
    assert isinstance(payload, dict)


@settings(max_examples=100, deadline=None)
@given(request=_fuzz_requests, data=st.data())
def test_fuzz_single_byte_corruption_never_escapes_the_codec(request, data):
    """Flipping one byte of a valid envelope either still parses to a
    well-formed (kind, payload) pair or raises ``WireError`` — no other
    exception type leaks out of ``decode``."""
    raw = bytearray(encode(KIND_SUBMIT, {"request": request_to_wire(request)}))
    index = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
    raw[index] ^= data.draw(st.integers(min_value=1, max_value=255))
    try:
        kind, payload = decode(bytes(raw))
    except WireError:
        return
    assert kind in KNOWN_KINDS
    assert isinstance(payload, dict)


# ------------------------------------------------------------------- hash ring


def test_ring_routes_every_key_to_a_member_deterministically():
    ring = ConsistentHashRing(range(4))
    again = ConsistentHashRing(range(4))
    keys = [f"tank-{i:03d}" for i in range(200)]
    for key in keys:
        assert ring.lookup(key) in (0, 1, 2, 3)
        assert ring.lookup(key) == again.lookup(key)  # process-independent


def test_ring_removal_only_remaps_the_removed_shards_keys():
    ring = ConsistentHashRing(range(4))
    keys = [f"tank-{i:03d}" for i in range(300)]
    before = {key: ring.lookup(key) for key in keys}
    ring.remove_shard(2)
    for key in keys:
        after = ring.lookup(key)
        if before[key] != 2:
            assert after == before[key]  # untouched arcs keep their owner
        else:
            assert after != 2


def test_ring_distribution_reports_every_shard():
    ring = ConsistentHashRing(range(3), replicas=128)
    counts = ring.distribution([f"tank-{i:03d}" for i in range(600)])
    assert set(counts) == {0, 1, 2}
    assert sum(counts.values()) == 600
    assert all(count > 0 for count in counts.values())


def test_ring_validation():
    with pytest.raises(ValueError):
        ConsistentHashRing([])
    with pytest.raises(ValueError):
        ConsistentHashRing([0], replicas=0)
    ring = ConsistentHashRing([0, 1])
    with pytest.raises(KeyError):
        ring.remove_shard(7)
    ring.remove_shard(1)
    with pytest.raises(ValueError):
        ring.remove_shard(0)  # never an empty ring


# ------------------------------------------------------------------ the router


def _serve(router, requests, timeout_s=60.0):
    accepted, rejected = router.submit_many(requests)
    assert router.await_responses(accepted, timeout_s=timeout_s)
    return accepted, rejected


def test_router_serves_all_requests_with_tank_affinity():
    config = ShardConfig(shards=2, seed=3, supervise=False)
    router = ShardRouter(config).start()
    try:
        requests = synthetic_load(40, n_tanks=6, seed=1)
        accepted, rejected = _serve(router, requests)
        assert (accepted, rejected) == (40, [])
        responses = router.responses()
        assert sorted(r.request_id for r in responses) == list(range(40))
        assert all(r.status == "ok" for r in responses)
        snapshot = router.metrics_snapshot()
    finally:
        assert router.shutdown()
    assert snapshot["service"]["shards"] == 2
    assert snapshot["counters"]["requests_served"] == 40
    # Both shards did real work and the per-shard counts add back up.
    per_shard = [s["requests_served"] for s in snapshot["shards"].values()]
    assert sum(per_shard) == 40 and all(count > 0 for count in per_shard)
    # Merged percentiles come from real reservoirs, not summary guesses.
    assert snapshot["histograms"]["latency_s"]["count"] == 40
    assert snapshot["histograms"]["latency_s"]["p95"] is not None


def test_router_backpressure_bounds_inflight_per_shard():
    config = ShardConfig(shards=1, queue_capacity=4, supervise=False)
    router = ShardRouter(config).start()
    try:
        requests = synthetic_load(12, n_tanks=1, seed=0)
        accepted, rejected = router.submit_many(requests)
        assert accepted <= 8  # capacity plus whatever already completed
        assert len(rejected) == 12 - accepted
        with pytest.raises(RuntimeError):
            router.kill_shard(7)  # unknown shard ids raise KeyError below
    except KeyError:
        pass
    finally:
        router.shutdown()


def test_duplicate_request_id_is_refused():
    config = ShardConfig(shards=1, supervise=False)
    router = ShardRouter(config).start()
    try:
        request = synthetic_load(1, n_tanks=1)[0]
        router.submit(request)
        with pytest.raises(ValueError):
            router.submit(request)
    finally:
        router.shutdown()


def test_killed_shard_recovers_with_zero_loss():
    """SIGKILL the busiest shard mid-run: the supervisor restarts the
    process, re-delivers its in-flight table, and every accepted request
    still gets exactly one terminal response."""
    config = ShardConfig(
        shards=2, seed=5, queue_capacity=256, heartbeat_interval_s=0.02
    )
    router = ShardRouter(config).start()
    try:
        requests = synthetic_load(120, n_tanks=8, seed=2)
        accepted, rejected = router.submit_many(requests)
        assert (accepted, len(rejected)) == (120, 0)
        router.await_responses(20, timeout_s=60.0)  # let some work finish
        victim = max(router.inflight_by_shard().items(), key=lambda kv: kv[1])[0]
        router.kill_shard(victim)
        assert router.await_responses(120, timeout_s=60.0)
        responses = router.responses()
        assert sorted(r.request_id for r in responses) == list(range(120))
        assert all(r.status == "ok" for r in responses)
        assert router.restarts.get(victim) == 1
        assert router.metrics.counter("requests_redelivered") > 0
    finally:
        router.shutdown()


def test_sharded_path_exactly_equals_single_process():
    from repro.verifylab import check_scenario_sharded, generate_scenario

    check = check_scenario_sharded(generate_scenario(11), shards=2)
    assert check.compared == check.scenario.n_requests
    assert check.ok, check.violations


# ----------------------------------------------------------- failure machinery


def _stillborn_shard_main(shard_id, conn, router_conn, config):
    """A worker that dies before sending hello (crash-loop stand-in)."""
    if router_conn is not None:
        router_conn.close()
    conn.close()


def test_failed_start_reaps_processes_and_is_retryable(monkeypatch):
    """A startup timeout must not leak half-started children or wedge
    the router: the launched processes are reaped and a later start()
    on the same router is a real retry."""
    import repro.shard.router as router_mod

    monkeypatch.setattr(router_mod, "shard_main", _stillborn_shard_main)
    config = ShardConfig(shards=2, supervise=False, startup_timeout_s=2.0)
    router = ShardRouter(config)
    with pytest.raises(RuntimeError):
        router.start()
    assert router._started is False
    assert router._handles == {}
    monkeypatch.undo()  # workers come up for real now
    router.start()
    try:
        accepted, rejected = _serve(router, synthetic_load(6, n_tanks=2, seed=1))
        assert (accepted, rejected) == (6, [])
    finally:
        router.shutdown()


def test_crashlooping_restart_converges_on_abandon(monkeypatch):
    """Regression: a replacement that died before hello used to be
    installed already-retired, which no later sweep would ever restart
    or abandon — stranding its in-flight requests forever.  Every failed
    restart must burn budget until the abandon path answers everything
    terminally."""
    import dataclasses

    import repro.shard.router as router_mod

    config = ShardConfig(shards=1, supervise=False, max_restarts_per_shard=2)
    router = ShardRouter(config).start()
    try:
        handle = router._handles[0]
        monkeypatch.setattr(router_mod, "shard_main", _stillborn_shard_main)
        router.config = dataclasses.replace(config, startup_timeout_s=0.3)
        router.kill_shard(0)
        handle.process.join(10.0)
        assert handle.dead.wait(10.0)
        # Accepted while the shard is down: the pipe write fails but the
        # entries stay in flight awaiting re-delivery.
        accepted, rejected = router.submit_many(synthetic_load(4, n_tanks=2, seed=6))
        assert (accepted, rejected) == (4, [])
        # Each sweep burns budget on a stillborn replacement...
        assert router.restart_shard(0) is False
        assert router.restart_shard(0) is False
        assert router.restarts[0] == 2
        assert router.metrics.counter("shard_restart_failures") == 2
        # ...until the budget is spent and the shard is abandoned, with
        # every stranded request answered terminally.
        assert router.restart_shard(0) is False
        assert 0 in router.abandoned
        assert router.await_responses(4, timeout_s=5.0)
        responses = router.responses()
        assert sorted(r.request_id for r in responses) == [0, 1, 2, 3]
        assert all(r.status == "failed" for r in responses)
        with pytest.raises(BrokerFullError):
            router.submit(synthetic_load(5, n_tanks=2, seed=7)[4])
    finally:
        router.shutdown()


def test_malformed_response_payload_keeps_request_inflight():
    """Regression: a response that fails wire validation used to pop the
    in-flight entry first, orphaning the request with no terminal answer
    possible.  Validation must come first so the entry stays tracked."""
    from repro.shard.router import _ShardHandle

    router = ShardRouter(ShardConfig(shards=1, supervise=False))
    handle = _ShardHandle(0, 0, process=None, conn=None)
    handle.inflight[7] = {"request_id": 7, "tank_id": "tank-007"}
    router._on_response(handle, {"request_id": 7})  # missing status et al.
    assert 7 in handle.inflight  # still re-deliverable
    assert router.metrics.counter("router_wire_errors") == 1
    good = response_to_wire(
        MeasurementResponse(request_id=7, tank_id="tank-007", status="ok")
    )
    router._on_response(handle, good)
    assert handle.inflight == {}
    assert [r.request_id for r in router.responses()] == [7]


def test_shard_chaos_campaign_loses_nothing():
    from repro.verifylab import run_shard_chaos_campaign

    report = run_shard_chaos_campaign(requests=24, seed=3, shards=2, kills=1)
    assert report["ok"], report
    assert report["terminal_rate"] == 1.0
    assert report["responses"]["ok"] == 24
    assert report["recovery"]["shard_restarts"] >= 1
    assert report["integrity"]["matching"] == report["integrity"]["checked"] == 24
