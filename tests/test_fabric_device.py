"""Tests for the Spartan-3 device catalog."""

import math

import pytest

from repro.fabric.device import (
    FRAMES_PER_CLB_COLUMN,
    SPARTAN3,
    DeviceSpec,
    get_device,
    smallest_fitting_device,
)


class TestCatalog:
    def test_family_size(self):
        assert len(SPARTAN3) == 8

    def test_slice_counts_match_datasheet(self):
        expected = {
            "XC3S50": 768,
            "XC3S200": 1920,
            "XC3S400": 3584,
            "XC3S1000": 7680,
            "XC3S1500": 13312,
            "XC3S2000": 20480,
            "XC3S4000": 27648,
            "XC3S5000": 33280,
        }
        for name, slices in expected.items():
            assert get_device(name).slices == slices

    def test_family_sorted_ascending(self):
        sizes = [d.slices for d in SPARTAN3]
        assert sizes == sorted(sizes)

    def test_monotone_static_power_and_price(self):
        powers = [d.static_power_w for d in SPARTAN3]
        prices = [d.price_usd for d in SPARTAN3]
        assert powers == sorted(powers)
        assert prices == sorted(prices)

    def test_lookup_case_insensitive(self):
        assert get_device("xc3s400") is get_device("XC3S400")

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown device"):
            get_device("XC9999")

    def test_bram_capacity(self):
        dev = get_device("XC3S400")
        assert dev.bram_kbits == 16 * 18
        assert dev.bram_bytes == 16 * 18 * 1024 // 8

    def test_config_bytes(self):
        dev = get_device("XC3S400")
        assert dev.config_bytes == math.ceil(1_699_136 / 8)

    def test_frame_geometry_consistent(self):
        for dev in SPARTAN3:
            assert dev.frame_count > FRAMES_PER_CLB_COLUMN * dev.clb_columns
            assert dev.frame_bits % 32 == 0
            # Frames must cover the whole configuration image.
            assert dev.frame_count * dev.frame_bits >= dev.config_bits


class TestFitting:
    def test_fits_boundaries(self):
        dev = get_device("XC3S200")
        assert dev.fits(slices=dev.slices)
        assert not dev.fits(slices=dev.slices + 1)
        assert not dev.fits(bram_blocks=dev.bram_blocks + 1)
        assert not dev.fits(multipliers=dev.multipliers + 1)

    def test_smallest_fitting(self):
        assert smallest_fitting_device(100).name == "XC3S50"
        assert smallest_fitting_device(1000).name == "XC3S200"
        assert smallest_fitting_device(6100).name == "XC3S1000"

    def test_paper_headline_sizing(self):
        """>6000 slices needs at least a Spartan-3 1000 (paper §4.2)."""
        assert smallest_fitting_device(6001).name == "XC3S1000"

    def test_utilization_cap(self):
        # 1900 slices fit XC3S200 raw but not at 90% utilization.
        assert smallest_fitting_device(1900).name == "XC3S200"
        assert smallest_fitting_device(1900, utilization_cap=0.9).name == "XC3S400"

    def test_utilization_cap_validation(self):
        with pytest.raises(ValueError, match="utilization_cap"):
            smallest_fitting_device(100, utilization_cap=0.0)

    def test_nothing_fits_raises(self):
        with pytest.raises(ValueError, match="no Spartan-3 device"):
            smallest_fitting_device(100_000)

    def test_bram_constrained_choice(self):
        # 100 slices but 20 BRAMs forces the 24-BRAM XC3S1000.
        assert smallest_fitting_device(100, bram_blocks=20).name == "XC3S1000"
