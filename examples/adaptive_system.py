#!/usr/bin/env python3
"""Scenario: run-time adaptation — algorithms and interfaces on demand.

The paper's introduction motivates the FPGA with requirements beyond raw
measurement: "fast run-time adaptation of the data processing algorithms"
and "flexibility regarding the available communication interfaces".  This
example exercises both: the processing slot swaps between precise/fast
algorithm variants as the power budget changes, and the interface slot
swaps between UART, Profibus and Ethernet as the plant asks for them.

Run:  python examples/adaptive_system.py
"""

from repro.app.adaptation import AdaptiveProcessingManager
from repro.app.interfaces import InterfaceManager
from repro.reconfig.ports import Icap


def main() -> None:
    print("=== algorithm adaptation (processing slot) ===")
    manager = AdaptiveProcessingManager(seed=12)
    scenarios = [
        ("grid power, tight spec", dict(accuracy_target=0.01)),
        ("battery saver mode", dict(power_budget_w=1.5e-7)),
        ("normal operation", dict(accuracy_target=0.03)),
    ]
    level = 0.55
    for label, requirement in scenarios:
        record = manager.measure(level, **requirement)
        print(
            f"{label:<24} -> {record.variant:<9} "
            f"level {record.level:.3f}, processing {record.processing_time_s * 1e6:6.2f} us, "
            f"energy {record.processing_energy_j * 1e9:7.1f} nJ, "
            f"switch {record.switch_time_s * 1e3:5.2f} ms"
        )

    print("\n=== interface adaptation (interface slot) ===")
    interfaces = InterfaceManager(port=Icap())
    for target in ("uart", "profibus", "ethernet", "ethernet"):
        record = interfaces.report_level(level, interface=target)
        print(
            f"report over {record.interface:<9} "
            f"payload {record.payload_bytes:2d} B, wire {record.wire_time_s * 1e6:8.2f} us, "
            f"slot switch {record.switch_time_s * 1e3:5.2f} ms"
        )
    print(
        f"\ninterface area: one {interfaces.resident_area_slices()}-slice slot resident "
        f"instead of {interfaces.flat_area_slices()} slices of always-on interface cores"
    )


if __name__ == "__main__":
    main()
