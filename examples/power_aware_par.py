#!/usr/bin/env python3
"""The paper's §4.3 methodology end to end: post-PAR simulation -> VCD ->
communication rates -> activity-driven net reallocation.

Builds a module-scale netlist, simulates representative logic to get a
real VCD, extracts per-net toggle rates, places & routes, then reallocates
the hottest nets and prints the Table-2-style before/after report.

Run:  python examples/power_aware_par.py
"""

import io

from repro.activity import annotate_netlist, toggle_rates, vcd_from_simulator
from repro.activity.vcd import parse_vcd
from repro.core.par_power import run_power_aware_flow
from repro.fabric.device import get_device
from repro.netlist.blocks import BlockFootprint, block_netlist
from repro.par.placer import PlacerOptions
from repro.sim.events import Simulator

CLOCK_MHZ = 50.0


def simulated_activity(n_signals: int) -> "ActivityReport":
    """Post-PAR-style simulation: counters of different widths stand in
    for datapath registers with different communication rates."""
    sim = Simulator(trace=True)
    clk = sim.clock("clk", period_ns=1000.0 / CLOCK_MHZ)
    signals = []
    for i in range(n_signals):
        width = 2 + (i % 10)
        sig = sim.signal(f"blk/n{i}", width=width)
        signals.append((sig, width))

    def tick():
        for sig, width in signals:
            sig.set((sig.value + 1) & sig.mask)

    clk.on_rising_edge(tick)
    sim.run(us=40)

    buf = io.StringIO()
    vcd_from_simulator(sim, buf)
    print(f"VCD: {len(buf.getvalue()) // 1024} KB, {n_signals + 1} signals")
    return toggle_rates(parse_vcd(buf.getvalue()), clock_period_ps=int(1e6 / CLOCK_MHZ))


def main() -> None:
    device = get_device("XC3S400")
    netlist = block_netlist(
        BlockFootprint("blk", slices=140, mean_activity=0.1), seed=17, interface_nets=8
    )

    print("1. post-PAR simulation -> VCD -> communication rates")
    report = simulated_activity(60)
    matched = annotate_netlist(netlist, report)
    print(f"   matched {matched} nets; hottest: "
          + ", ".join(f"{n}={a:.2f}" for n, a in report.hottest(3)))

    print("\n2. place, route, estimate, reallocate hot nets, re-estimate")
    result = run_power_aware_flow(
        netlist,
        device,
        clock_mhz=CLOCK_MHZ,
        top_n=10,
        placer_options=PlacerOptions(steps=30, mode="power"),
    )

    print("\n" + result.table2())
    print(
        f"\nrouting power: {result.power_before.routing_w * 1e6:.1f} uW -> "
        f"{result.power_after.routing_w * 1e6:.1f} uW "
        f"({result.routing_power_reduction_pct:.1f} % reduction)"
    )
    print(f"critical path: {result.timing_before.critical_path_ns:.2f} ns -> "
          f"{result.timing_after.critical_path_ns:.2f} ns")
    print("\nfull power report after optimization:")
    print(result.power_after.summary())


if __name__ == "__main__":
    main()
