#!/usr/bin/env python3
"""The paper's §4.2 methodology: partial reconfiguration for cost & power.

Walks the complete design space: compile the System-Generator modules,
size the devices for flat / one-slot / five-module implementations, plan
the floorplan, generate the partial bitstreams, and compare the
per-cycle reconfiguration overhead over JCAP and ICAP ports — including
the clock-reduction power lever.

Run:  python examples/partial_reconfig_power.py
"""

from repro.app.modules import FRAME_SAMPLES, repartitioned_modules, standard_modules
from repro.app.system import static_side_slices
from repro.core.reconfig_power import power_vs_clock, size_devices
from repro.fabric.bitstream import BitstreamGenerator
from repro.fabric.device import get_device
from repro.ip.ethernet import ETHERNET_FOOTPRINT
from repro.ip.profibus import PROFIBUS_FOOTPRINT
from repro.power.model import static_power_w
from repro.reconfig.controller import ReconfigController
from repro.reconfig.ports import Icap, Jcap
from repro.reconfig.slots import plan_floorplan


def main() -> None:
    modules = standard_modules()
    print("compiled modules:")
    for module in modules.values():
        print(f"  {module.compiled}")

    sizing = size_devices(
        static_slices=static_side_slices(),
        resident_slices=ETHERNET_FOOTPRINT.slices + PROFIBUS_FOOTPRINT.slices,
        modules=[m.compiled for m in modules.values()],
        repartitioned=repartitioned_modules(5),
    )
    print("\n" + sizing.summary())

    # Floorplan + bitstreams on the one-slot XC3S400 system.
    device = get_device("XC3S400")
    slot_slices = max(m.compiled.slices for m in modules.values())
    plan = plan_floorplan(device, static_side_slices(), [slot_slices])
    print(f"\nfloorplan on {device.name}: static {plan.static_region}, "
          f"slot {plan.slots[0].region} ({len(plan.slots[0].busmacros)} bus macros)")

    print("\nper-module partial bitstreams and load times:")
    print(f"{'module':<12} {'size':>10} {'JCAP(basic)':>12} {'JCAP(impr.)':>12} {'ICAP':>9}")
    ports = [Jcap(improved=False), Jcap(improved=True), Icap()]
    generator = BitstreamGenerator(device)
    for name in modules:
        bs = generator.partial_for_region(plan.slots[0].region, name)
        times = [bs.total_bytes / p.bytes_per_second * 1e3 for p in ports]
        print(f"{name:<12} {bs.total_bytes / 1024:>8.1f}KB "
              f"{times[0]:>10.1f}ms {times[1]:>10.1f}ms {times[2]:>7.2f}ms")

    # Run the actual controller once over ICAP.
    controller = ReconfigController(plan, Icap())
    for name in modules:
        controller.prepare_module(name, 0)
    for name in ("frontend", "amp_phase", "capacity", "filter"):
        controller.load(name, 0)
    print(f"\nICAP cycle overhead: {controller.total_reconfig_time_s * 1e3:.2f} ms "
          f"({controller.total_reconfig_energy_j * 1e3:.3f} mJ) per 100 ms cycle")

    # The clock-reduction lever.
    ap = modules["amp_phase"].compiled
    print("\nreduced-clock dynamic power (amp/phase module on XC3S400):")
    for point in power_vs_clock(ap.slices, FRAME_SAMPLES, ap.latency_cycles, device,
                                [10, 25, 50, 75]):
        print(f"  {point.clock_mhz:>5.0f} MHz: processing {point.processing_time_s * 1e6:7.2f} us, "
              f"dynamic {point.dynamic_power_w * 1e3:6.2f} mW, "
              f"total {point.total_power_w * 1e3:6.2f} mW")

    saving = static_power_w(sizing.flat_device) - static_power_w(sizing.one_slot_device)
    print(f"\nstatic power saved by fitting {sizing.one_slot_device.name} instead of "
          f"{sizing.flat_device.name}: {saving * 1e3:.1f} mW "
          f"(plus {sizing.cost_saving_usd:.2f} USD of BOM)")


if __name__ == "__main__":
    main()
