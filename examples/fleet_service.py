#!/usr/bin/env python3
"""Scenario: one measurement service, many tanks, few FPGAs.

The paper sizes a single reconfigurable Spartan-3 for a single tank.
This example multiplexes a whole tank farm onto a small pool of
simulated devices with ``repro.serve``: requests are queued with
deadlines and backpressure, grouped into same-pipeline batches so the
slot is reconfigured once per stage per batch (not once per stage per
request), and partial bitstreams are generated once and shared through
an LRU artifact cache.  A transient-fault run shows the SEU
scrub-and-retry path.

Run:  python examples/fleet_service.py
"""

from repro.serve import FleetService, synthetic_load


def serve_fleet(batched: bool, fault_rate: float = 0.0) -> dict:
    service = FleetService(
        workers=2,
        max_batch=8,
        batched=batched,
        fault_rate=fault_rate,
        seed=0,
    ).start()
    accepted, rejected = service.submit_many(synthetic_load(24, n_tanks=6))
    assert not rejected, "queue sized for the whole burst"
    service.await_responses(accepted, timeout_s=120)
    service.shutdown()
    return service.metrics_snapshot()


def main() -> None:
    print("serving 24 measurements across 6 tanks on 2 simulated FPGAs...\n")
    snapshots = {
        "per-request": serve_fleet(batched=False),
        "batched": serve_fleet(batched=True),
    }

    header = f"{'metric':<24}" + "".join(f"{m:>14}" for m in snapshots)
    print(header)
    print("-" * len(header))
    rows = [
        ("requests/s", lambda s: f"{s['service']['requests_per_s']:.1f}"),
        ("p95 latency", lambda s: f"{s['histograms']['latency_s']['p95'] * 1e3:.0f} ms"),
        ("slot reconfigurations", lambda s: str(s["service"]["reconfigurations"])),
        ("reconfigs avoided", lambda s: str(s["service"]["reconfigurations_avoided"])),
        ("mJ per measurement", lambda s: f"{s['service']['joules_per_request'] * 1e3:.3f}"),
        ("bitstream cache hits", lambda s: str(s["cache"]["hits"])),
    ]
    for label, render in rows:
        print(f"{label:<24}" + "".join(f"{render(s):>14}" for s in snapshots.values()))

    b = snapshots["batched"]["service"]
    u = snapshots["per-request"]["service"]
    print(
        f"\nbatching: {u['reconfigurations'] / max(1, b['reconfigurations']):.0f}x "
        f"fewer slot reconfigurations, "
        f"{b['requests_per_s'] / u['requests_per_s']:.2f}x requests/s"
    )

    print("\nnow with SEU faults on every first attempt (rate=1.0)...")
    faulty = serve_fleet(batched=True, fault_rate=1.0)
    counters = faulty["counters"]
    print(
        f"faults injected {counters['faults_injected']}, "
        f"scrubbed {counters['faults_scrubbed']}, "
        f"requests retried {counters['requests_retried']} — "
        f"all {counters['requests_served']} measurements still served"
    )


if __name__ == "__main__":
    main()
