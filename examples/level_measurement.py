#!/usr/bin/env python3
"""Scenario: a tank filling over time, tracked by all four system variants.

Simulates a fill trajectory (pump on, then a partial drain) and runs each
implementation of the paper's narrative on the same true levels: the
original microcontroller, the ported-software FPGA prototype, the flat
all-hardware FPGA, and the reconfigurable system.  Shows that every
substrate computes the same answer while differing by orders of magnitude
in processing time — the paper's core story.

Run:  python examples/level_measurement.py
"""

import math

from repro.app.system import (
    FpgaFullHardwareSystem,
    FpgaReconfigSystem,
    FpgaSoftwareSystem,
    MicrocontrollerSystem,
)
from repro.reconfig.ports import Icap


def fill_trajectory(steps: int = 8):
    """True level over time: fill to 90 %, drain back to 40 %."""
    for i in range(steps):
        t = i / (steps - 1)
        if t < 0.6:
            yield 0.1 + 0.8 * (t / 0.6)
        else:
            yield 0.9 - 0.5 * ((t - 0.6) / 0.4)


def main() -> None:
    systems = {
        "mcu": MicrocontrollerSystem(),
        "fpga-sw": FpgaSoftwareSystem(),
        "fpga-hw": FpgaFullHardwareSystem(),
        "reconfig": FpgaReconfigSystem(port=Icap()),
    }

    header = f"{'t':>3} {'true':>6}"
    for name in systems:
        header += f" {name:>9}"
    print(header)
    print("-" * len(header))

    for step, level in enumerate(fill_trajectory()):
        row = f"{step:>3} {level:>6.3f}"
        for system in systems.values():
            result = system.run_cycle(level)
            row += f" {result.level_measured:>9.3f}"
        print(row)

    print("\nper-cycle cost of the last measurement:")
    print(f"{'system':<10} {'device':<14} {'processing':>12} {'energy':>10} {'avg power':>10}")
    for name, system in systems.items():
        result = system.run_cycle(0.4)
        print(
            f"{name:<10} {result.device:<14} "
            f"{result.processing_time_s * 1e3:>10.4f}ms "
            f"{result.energy_j * 1e3:>8.3f}mJ {result.avg_power_w * 1e3:>8.1f}mW"
        )

    sw = systems["fpga-sw"].run_cycle(0.4)
    hw = systems["fpga-hw"].run_cycle(0.4)
    print(
        f"\nsoftware {sw.processing_time_s * 1e3:.2f} ms vs hardware "
        f"{hw.processing_time_s * 1e6:.1f} us -> "
        f"{sw.processing_time_s / hw.processing_time_s:.0f}x speedup "
        f"(paper: ~1000x, 7 ms -> 7 us)"
    )


if __name__ == "__main__":
    main()
