#!/usr/bin/env python3
"""Quickstart: measure a tank level on the reconfigurable FPGA system.

Builds the paper's system (Spartan-3 400, static MicroBlaze side + one
reconfigurable slot, ICAP-class configuration port), runs a few
measurement cycles and prints what the display UART would show.

Run:  python examples/quickstart.py
"""

from repro.app.system import FpgaReconfigSystem
from repro.reconfig.ports import Icap


def main() -> None:
    system = FpgaReconfigSystem(port=Icap())
    print(f"device      : {system.device.name}")
    print(f"floorplan   : static {system.floorplan.static_region}, "
          f"slot {system.floorplan.slots[0].region}")
    print(f"module clock: {system.hw_clock_mhz:.0f} MHz\n")

    print(f"{'true level':>10} {'measured':>9} {'capacitance':>12} "
          f"{'processing':>11} {'reconfig':>9} {'power':>8}")
    for level in (0.10, 0.35, 0.60, 0.85):
        system.reset()  # independent test points
        result = system.run_cycle(level)
        print(
            f"{level:>10.2f} {result.level_measured:>9.3f} "
            f"{result.capacitance_pf:>10.1f}pF "
            f"{result.processing_time_s * 1e6:>9.1f}us "
            f"{result.reconfig_time_s * 1e3:>7.1f}ms "
            f"{result.avg_power_w * 1e3:>6.1f}mW"
        )

    print("\nlast cycle timeline:")
    print(result.schedule.timeline())


if __name__ == "__main__":
    main()
