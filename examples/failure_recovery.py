#!/usr/bin/env python3
"""Scenario: failure detection and recovery by partial reconfiguration.

The paper's introduction motivates the FPGA platform with upcoming
"requirements on failure detection and recovery".  This example runs the
self-healing measurement system through an SEU strike: a configuration bit
of the amp/phase module flips mid-operation, the watchdog flags the
implausible reading, the scrubber locates the corrupted frame, and a
partial reload of the single module restores operation — while the level
readings before and after stay correct.

Run:  python examples/failure_recovery.py
"""

from repro.app.failsafe import SelfHealingSystem
from repro.fabric.bitstream import BitstreamGenerator
from repro.reconfig.ports import Icap


def main() -> None:
    healing = SelfHealingSystem(seed=2026)
    system = healing.system
    print(f"device: {system.device.name}, port: {system.controller.port.name}, "
          f"{healing.slot_frames} slot frames under scrub protection\n")

    true_level = 0.62
    print("healthy operation:")
    for _ in range(2):
        result = healing.run_cycle(true_level)
        print(f"  level: {result.level_measured:.3f} (true {true_level})")

    fault = healing.inject_module_fault("amp_phase")
    print(f"\n*** injected {fault} ***")

    result = healing.run_cycle(true_level)
    event = healing.recoveries[-1]
    print("watchdog verdict : " + "; ".join(event.violations))
    print(f"recovery         : readback scrub + frame repair of {event.module!r} "
          f"in {event.recovery_time_s * 1e3:.2f} ms")
    full = BitstreamGenerator(system.device).full("top").total_bytes / Icap().bytes_per_second
    print(f"(full-device reload would take {full * 1e3:.2f} ms and lose all state)")
    print(f"re-measured level: {result.level_measured:.3f} (true {true_level})")

    print("\noperation continues:")
    for _ in range(2):
        result = healing.run_cycle(true_level)
        print(f"  level: {result.level_measured:.3f}")
    print(f"\ntotal recoveries: {len(healing.recoveries)}, "
          f"active fault: {healing.has_active_fault}")


if __name__ == "__main__":
    main()
