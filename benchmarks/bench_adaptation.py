"""Extension — run-time adaptation of the data-processing algorithms.

Paper §2: FPGAs allow "fast runtime adaptation of the data processing
algorithms, which can be exploited for optimizing the calculations and the
system implementation to changing requirements on power consumption and
performance."  Measured: the precise/balanced/fast algorithm variants'
area, latency, energy and switch cost.
"""

from _util import show

from repro.app.adaptation import AdaptiveProcessingManager

CLOCK_MHZ = 75.0


def test_algorithm_adaptation(benchmark):
    manager = benchmark.pedantic(
        lambda: AdaptiveProcessingManager(seed=4), rounds=1, iterations=1
    )

    lines = [
        f"{'variant':<10} {'frame':>6} {'cordic':>7} {'slices':>7} "
        f"{'proc us':>8} {'energy uJ':>10} {'switch ms':>10}"
    ]
    switch_times = {}
    for name, variant in manager.variants.items():
        switch_times[name] = manager.switch_to(name)
        lines.append(
            f"{name:<10} {variant.frame_samples:>6} {variant.cordic_width:>7} "
            f"{variant.compiled.slices:>7} "
            f"{variant.processing_time_s(CLOCK_MHZ) * 1e6:>8.2f} "
            f"{variant.processing_energy_j(CLOCK_MHZ) * 1e6:>10.3f} "
            f"{switch_times[name] * 1e3:>10.2f}"
        )
    lines.append("")
    lines.append(
        "policy: accuracy 0.01 -> "
        + manager.select(accuracy_target=0.01)
        + "; power budget 0.15 uW -> "
        + manager.select(power_budget_w=1.5e-7)
    )
    show("Extension: run-time algorithm adaptation", "\n".join(lines))

    precise = manager.variants["precise"]
    fast = manager.variants["fast"]
    # The trade-off the adaptation exploits.
    assert precise.compiled.slices > fast.compiled.slices
    assert precise.processing_time_s(CLOCK_MHZ) > 3 * fast.processing_time_s(CLOCK_MHZ)
    assert precise.processing_energy_j(CLOCK_MHZ) > 3 * fast.processing_energy_j(CLOCK_MHZ)
    # Switching is "fast run-time adaptation": a few ms over ICAP, well
    # inside the 100 ms cycle.
    assert all(0 < t < 0.02 for t in switch_times.values())
    # The policy honours both requirement axes.
    assert manager.select(accuracy_target=0.01) == "precise"
    assert manager.select(power_budget_w=1.5e-7) == "fast"
    benchmark.extra_info.update(
        {
            "precise_slices": precise.compiled.slices,
            "fast_slices": fast.compiled.slices,
            "switch_ms": round(max(switch_times.values()) * 1e3, 2),
        }
    )
