"""Extension — automatic static/dynamic partitioning (paper §3, ref [10]):
"Automatic tools for the design of on-demand reconfigurable systems with
real-time requirements will be required".

The tool sweeps partition counts, sizes devices, checks the per-cycle
reconfiguration budget and returns the power-optimal feasible design.
"""

from _util import show

from repro.app.modules import build_processing_graph
from repro.app.system import static_side_slices
from repro.core.autopartition import auto_partition
from repro.reconfig.ports import Icap, Jcap

COUNTS = (1, 2, 3, 4, 5, 6, 7)


def test_auto_partition(benchmark):
    graph = build_processing_graph()

    result = benchmark.pedantic(
        lambda: auto_partition(graph, static_side_slices(), counts=COUNTS, port=Icap()),
        rounds=1,
        iterations=1,
    )

    lines = [
        f"{'modules':>8} {'max slices':>11} {'device':>10} {'static mW':>10} "
        f"{'reconfig ms':>12} {'feasible':>9}"
    ]
    for c in result.candidates:
        lines.append(
            f"{c.module_count:>8} {c.max_module_slices:>11} {c.device:>10} "
            f"{c.static_power_w * 1e3:>10.1f} {c.reconfig_time_per_cycle_s * 1e3:>12.2f} "
            f"{str(c.feasible):>9}"
        )
    lines.append("")
    lines.append(f"power-optimal design: {result.best}")
    front = result.pareto_front()
    lines.append("pareto front: " + ", ".join(f"{c.module_count} modules/{c.device}" for c in front))

    # Same search over the slow JCAP: the real-time budget bites.
    jcap_result = auto_partition(
        graph, static_side_slices(), counts=COUNTS, port=Jcap(improved=True)
    )
    feasible_jcap = [c.module_count for c in jcap_result.candidates if c.feasible]
    lines.append(f"feasible over improved JCAP: {feasible_jcap or 'none'}")
    show("Extension: automatic partitioning (ref. [10])", "\n".join(lines))

    assert result.best is not None and result.best.feasible
    assert result.best.device == "XC3S200"  # smallest static power wins
    assert len(result.pareto_front()) >= 1
    assert len(feasible_jcap) < sum(c.feasible for c in result.candidates)
    benchmark.extra_info.update(
        {
            "best_modules": result.best.module_count,
            "best_device": result.best.device,
            "jcap_feasible_counts": str(feasible_jcap),
        }
    )
