"""Network edge under a flash crowd: tail latency and shed discipline.

Loadgen v2 replays a flash-crowd arrival schedule against a live
:class:`repro.net.NetServer` over real TCP sockets and asserts the edge
keeps its promises when traffic spikes: every request settles (nothing
is silently lost), what is shed is shed *explicitly* via reject
envelopes with retry hints, the shed rate stays under a ceiling, and
the reservoir-backed p99 clears a generous sanity floor.

The floors are deliberately loose — this bench runs on shared CI boxes
where absolute latency is noise; what must hold everywhere is the
accounting (ok + expired + failed + rejected == submitted, lost == 0)
and the shape of the tail (p999 >= p99 >= p50 > 0).

Set ``BENCH_NET_JSON=path`` to also write the per-shape tail-latency
table as JSON (the CI artifact ``BENCH_net.json``).
"""

import json
import os

from _util import show

from repro.net import NetConfig, NetServer, run_shape
from repro.serve.pool import FleetService

#: Short enough for CI, long enough that the flash window (~80 ms at
#: these settings) actually outruns the service rate and exercises
#: admission under pressure.
N_REQUESTS, DURATION_S, N_CLIENTS, N_TANKS = 120, 1.0, 4, 6
SHAPES = ("steady", "flash")

#: At most this fraction of a flash crowd may be shed.  The queue is
#: sized to absorb the whole burst, so shedding should be rare — the
#: ceiling exists to catch a regression where admission or quotas start
#: refusing healthy traffic wholesale.
SHED_CEILING = 0.25

#: Generous sanity floor on p99: a real served request crosses a socket,
#: the broker, a worker and the wire back, so sub-10us would mean the
#: reservoir is recording garbage (or nothing).
P99_FLOOR_S = 1e-5


def _run_shape(shape: str) -> dict:
    service = FleetService(
        workers=2, max_batch=8, queue_capacity=N_REQUESTS + 32, seed=0
    )
    service.start()
    server = NetServer(service, NetConfig()).start()
    try:
        return run_shape(
            "127.0.0.1",
            server.port,
            shape=shape,
            n_requests=N_REQUESTS,
            duration_s=DURATION_S,
            n_clients=N_CLIENTS,
            n_tanks=N_TANKS,
            seed=0,
            timeout_s=120.0,
        )
    finally:
        server.stop()
        service.shutdown()


def run_all() -> dict:
    return {shape: _run_shape(shape) for shape in SHAPES}


def test_net_flash_crowd_tail(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    header = (
        f"{'shape':<9}{'ok':>6}{'rejected':>10}{'shed':>7}"
        f"{'p50 ms':>9}{'p99 ms':>9}{'p999 ms':>9}"
    )
    lines = [header, "-" * len(header)]
    rows = []
    for shape, report in results.items():
        counts, latency = report["counts"], report["latency_s"]
        rows.append(
            {
                "shape": shape,
                "requests": report["requests"],
                "ok": counts["ok"],
                "rejected": counts["rejected"],
                "expired": counts["expired"],
                "lost": counts["lost"],
                "shed_rate": round(report["shed_rate"], 4),
                "throughput_rps": round(report["throughput_rps"], 1),
                "p50_ms": round((latency["p50"] or 0.0) * 1e3, 2),
                "p99_ms": round((latency["p99"] or 0.0) * 1e3, 2),
                "p999_ms": round((latency["p999"] or 0.0) * 1e3, 2),
            }
        )
        lines.append(
            f"{shape:<9}{counts['ok']:>6}{counts['rejected']:>10}"
            f"{report['shed_rate']:>7.2%}"
            f"{(latency['p50'] or 0.0) * 1e3:>9.1f}"
            f"{(latency['p99'] or 0.0) * 1e3:>9.1f}"
            f"{(latency['p999'] or 0.0) * 1e3:>9.1f}"
        )
    show("Network edge: tail latency per traffic shape", "\n".join(lines))

    for shape, report in results.items():
        counts = report["counts"]
        # Nothing vanishes: every submit has a terminal outcome.
        assert counts["lost"] == 0, (shape, counts)
        assert not report["client_errors"], (shape, report["client_errors"])
        settled = (
            counts["ok"] + counts["expired"] + counts["failed"] + counts["rejected"]
        )
        assert settled == report["requests"], (shape, counts)
        # Shedding is explicit and bounded.
        assert report["shed_rate"] <= SHED_CEILING, (shape, report["shed_rate"])
        # The tail is real: monotone percentiles above the sanity floor.
        latency = report["latency_s"]
        assert latency["p99"] is not None and latency["p99"] >= P99_FLOOR_S, (
            shape,
            latency,
        )
        assert latency["p999"] >= latency["p99"] >= latency["p50"] > 0.0, (
            shape,
            latency,
        )

    flash = results["flash"]
    report = {
        "requests": N_REQUESTS,
        "duration_s": DURATION_S,
        "clients": N_CLIENTS,
        "tanks": N_TANKS,
        "shed_ceiling": SHED_CEILING,
        "p99_floor_s": P99_FLOOR_S,
        "shapes": rows,
    }
    out = os.environ.get("BENCH_NET_JSON")
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    benchmark.extra_info.update(
        {
            "flash_shed_rate": round(flash["shed_rate"], 4),
            "flash_p99_ms": round((flash["latency_s"]["p99"] or 0.0) * 1e3, 2),
            "flash_ok": flash["counts"]["ok"],
        }
    )
