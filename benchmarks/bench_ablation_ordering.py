"""Ablation — net-selection ordering.

"Optimizing the nets with higher communication rates first will lead to
better results": the same optimization budget (top-N nets) spent on
activity-ranked nets vs randomly-picked nets vs power-ranked nets.
"""

from _util import show

from repro.core.par_power import run_power_aware_flow
from repro.fabric.device import get_device
from repro.netlist.blocks import BlockFootprint, block_netlist
from repro.par.placer import PlacerOptions

BLOCK = BlockFootprint("order_blk", slices=150, mean_activity=0.1)
BUDGET = 8


def test_ablation_net_ordering(benchmark):
    device = get_device("XC3S400")

    def run_orderings():
        savings = {}
        for order in ("activity", "power", "random"):
            netlist = block_netlist(BLOCK, seed=9)  # fresh netlist per run
            result = run_power_aware_flow(
                netlist,
                device,
                clock_mhz=50.0,
                top_n=BUDGET,
                placer_options=PlacerOptions(steps=20, seed=4),
                order=order,
            )
            saved = result.power_before.routing_w - result.power_after.routing_w
            savings[order] = saved * 1e6
        return savings

    savings = benchmark.pedantic(run_orderings, rounds=1, iterations=1)

    lines = [f"optimization budget: {BUDGET} nets"]
    for order, uw in savings.items():
        lines.append(f"  order={order:<10} routing power saved: {uw:8.2f} uW")
    show("Ablation: net-selection ordering (paper Section 4.3)", "\n".join(lines))

    # The paper's heuristic: activity-first beats a random pick.  (Power
    # ordering is allowed to win — it is an even stronger oracle.)
    assert savings["activity"] >= savings["random"]
    assert savings["activity"] > 0
    benchmark.extra_info.update({f"saved_{k}_uw": round(v, 2) for k, v in savings.items()})
