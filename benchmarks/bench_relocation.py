"""Extension — relocatable bitstreams (paper §3, reference [5]).

"This could be interesting in order to decrease the bitstream overhead and
thereby reduce memory requirements for the reconfigurable modules": with
relocation, the external store holds one image per module instead of one
per (module, slot).
"""

from _util import show

from repro.fabric.bitstream import Bitstream, BitstreamGenerator
from repro.fabric.device import get_device
from repro.fabric.grid import Grid
from repro.reconfig.relocation import relocate, store_savings

MODULES = ("frontend", "amp_phase", "capacity", "filter")


def test_bitstream_relocation(benchmark):
    device = get_device("XC3S1000")
    grid = Grid(device)
    slot_a = grid.column_region(4, 20)
    slot_b = grid.column_region(22, 38)
    generator = BitstreamGenerator(device)
    images = {name: generator.partial_for_region(slot_a, name) for name in MODULES}

    moved = benchmark(
        lambda: {name: relocate(bs, slot_a, slot_b, device) for name, bs in images.items()}
    )

    per_image = images["amp_phase"].total_bytes
    savings = store_savings(modules=len(MODULES), slots=2, per_image_bytes=per_image)
    body = (
        f"slots           : {slot_a} and {slot_b} ({slot_a.width} columns each)\n"
        f"per-module image: {per_image / 1024:.1f} KB\n"
        f"store, per-slot images   : {savings.per_slot_bytes / 1024:8.1f} KB\n"
        f"store, relocatable images: {savings.relocatable_bytes / 1024:8.1f} KB\n"
        f"memory saved             : {savings.saved_bytes / 1024:8.1f} KB "
        f"({100 * savings.saved_bytes / savings.per_slot_bytes:.0f} %)"
    )
    show("Extension: relocatable partial bitstreams (ref. [5])", body)

    # Relocated images stay structurally valid and land on slot B columns.
    for name, bs in moved.items():
        parsed = Bitstream.from_bytes(bs.to_bytes(), device.name)
        assert parsed.frame_count == images[name].frame_count
        columns = {f.address >> 8 for f in parsed.frames}
        assert columns == set(slot_b.columns)
    assert savings.saved_bytes == per_image * len(MODULES)
    benchmark.extra_info["saved_kb"] = round(savings.saved_bytes / 1024, 1)
