"""Vector engine throughput: fused numpy batch kernels vs the scalar engine.

The paper's headline DSP number — a Goertzel + capacitance evaluation in
7 ms of softcore time, reduced to ~7 us once moved into fabric — is an
argument about *fusing the inner loop into hardware*.  ``repro.kernels``
replays that argument in software: the stage-major executor hands each
whole-batch stage to fused (B, N) numpy/C kernels instead of looping per
request, so the per-request Python interpreter overhead is amortized the
way the paper amortizes softcore cycles.  This bench serves the same
synthetic fleet workload through both engines at batch size >= 8 and
asserts the speedup floor from ISSUE 3, plus result equivalence.
"""

from _util import show

from repro.kernels import native_available, native_status
from repro.serve import FleetService, synthetic_load

#: (label, n_requests, n_tanks, max_batch) — batch >= 8 per the issue.
LOADS = [
    ("batch8", 32, 4, 8),
    ("batch16", 48, 6, 16),
]

#: Speedup floor at batch >= 8.  The compiled C ADC kernel carries most
#: of it; when no C compiler is present the fused pure-Python fallback
#: still has to beat scalar, just by a smaller margin.
SPEEDUP_FLOOR = 5.0 if native_available() else 1.2


def serve(n_requests: int, n_tanks: int, max_batch: int, engine: str) -> dict:
    # One worker keeps per-tank execution order deterministic, so the
    # vector/scalar responses can be compared for exact equality.
    service = FleetService(
        workers=1,
        max_batch=max_batch,
        queue_capacity=n_requests + 16,
        batched=True,
        seed=0,
        engine=engine,
    ).start()
    accepted, rejected = service.submit_many(synthetic_load(n_requests, n_tanks=n_tanks))
    assert not rejected
    assert service.await_responses(accepted, timeout_s=300)
    assert service.shutdown()
    responses = service.responses()
    assert all(r.ok for r in responses)
    snap = service.metrics_snapshot()
    snap["_levels"] = {r.request_id: r.level_measured for r in responses}
    return snap


def run_all() -> dict:
    results = {}
    for label, n, tanks, batch in LOADS:
        vector = serve(n, tanks, batch, engine="vector")  # warm kernel caches
        results[label] = {
            "vector": serve(n, tanks, batch, engine="vector"),
            "scalar": serve(n, tanks, batch, engine="scalar"),
        }
        del vector
    return results


def test_serve_vector(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    header = (
        f"{'load':<9}{'engine':<9}{'req/s':>9}{'p95 ms':>8}"
        f"{'frontend p50 ms':>17}{'dsp p50 us':>12}"
    )
    lines = [header, "-" * len(header), f"native ADC kernel: {native_status()}"]
    for label, engines in results.items():
        for engine, snap in engines.items():
            hist = snap["histograms"]
            dsp_p50_us = sum(
                hist[f"stage_{stage}_s"]["p50"] * 1e6
                for stage in ("amp_phase", "capacity", "filter")
            )
            lines.append(
                f"{label:<9}{engine:<9}"
                f"{snap['service']['requests_per_s']:>9.1f}"
                f"{hist['latency_s']['p95'] * 1e3:>8.0f}"
                f"{hist['stage_frontend_s']['p50'] * 1e3:>17.2f}"
                f"{dsp_p50_us:>12.1f}"
            )
    show("Fleet serving: vector vs scalar execution engine", "\n".join(lines))

    for label, engines in results.items():
        v, s = engines["vector"]["service"], engines["scalar"]["service"]
        speedup = v["requests_per_s"] / max(1e-9, s["requests_per_s"])
        # ISSUE 3 acceptance: >= 5x requests/s over scalar at batch >= 8
        # (relaxed to the fused-Python floor when no C compiler exists).
        assert speedup >= SPEEDUP_FLOOR, (label, speedup, native_status())
        # Both engines must answer every request with identical results.
        assert engines["vector"]["_levels"] == engines["scalar"]["_levels"], label

    batch8 = results["batch8"]
    benchmark.extra_info.update(
        {
            "native_kernel": native_status(),
            "vector_rps": round(batch8["vector"]["service"]["requests_per_s"], 1),
            "scalar_rps": round(batch8["scalar"]["service"]["requests_per_s"], 1),
            "speedup": round(
                batch8["vector"]["service"]["requests_per_s"]
                / max(1e-9, batch8["scalar"]["service"]["requests_per_s"]),
                1,
            ),
        }
    )
