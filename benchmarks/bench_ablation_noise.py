"""Ablation — measurement robustness vs front-end noise.

The measurement principle relies on the reference channel cancelling
common-mode errors; channel noise is what remains.  Sweeping the analog
noise floor shows where the 512-sample averaging stops protecting the
level estimate — the envelope within which the paper's application
operates.
"""

import numpy as np
from _util import show

from repro.app.dsp import process_measurement
from repro.app.frontend import AnalogFrontEnd

NOISE_LEVELS = (0.0, 0.002, 0.01, 0.05)
TEST_LEVELS = (0.3, 0.7)


def test_ablation_noise_robustness(benchmark):
    def sweep():
        rows = []
        for noise in NOISE_LEVELS:
            errors = []
            for seed in (1, 2):
                fe = AnalogFrontEnd(noise_rms=noise, seed=seed)
                for level in TEST_LEVELS:
                    cyc = fe.sample_cycle(level, 512)
                    out = process_measurement(
                        cyc.meas, cyc.ref, cyc.sample_rate_hz, cyc.tone_hz, fe.circuit
                    )
                    errors.append(abs(out.level - level))
            rows.append((noise, float(np.mean(errors)), float(np.max(errors))))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [f"{'noise rms':>10} {'mean |err|':>11} {'max |err|':>10}"]
    for noise, mean_err, max_err in rows:
        lines.append(f"{noise:>10.3f} {mean_err:>11.4f} {max_err:>10.4f}")
    lines.append(
        "\nnote: moderate noise *reduces* the error — it dithers the one-bit"
        "\ndelta-sigma quantisers, whitening their systematic tones; the"
        "\nzero-noise point shows the undithered modulator bias."
    )
    show("Ablation: level accuracy vs analog noise floor", "\n".join(lines))

    by_noise = {n: (m, x) for n, m, x in rows}
    # Nominal operation (paper's regime) and every swept point keep the
    # estimator within a few percent: 64 tone periods of averaging plus
    # the ratiometric reference channel absorb the noise.
    assert all(x < 0.05 for _n, _m, x in rows)
    # The dithering effect: moderate noise beats the zero-noise bias.
    assert by_noise[0.01][0] < by_noise[0.0][0]
    benchmark.extra_info.update(
        {f"max_err_at_{n}": round(x, 4) for n, _m, x in rows}
    )
