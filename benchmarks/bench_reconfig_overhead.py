"""§4.2/§5 — reconfiguration time overhead: JCAP vs ICAP.

"It is also very important to consider the time overhead induced by the
reconfiguration process.  The JCAP core offers a reconfiguration rate
which is lower than the one provided by the ICAP interface" — and [11]
describes how the JCAP rate may be increased.  This bench measures the
per-cycle overhead of loading all four modules over each port model
against the 100 ms measurement period.
"""

from _util import show

from repro.app.system import static_side_slices
from repro.core.reconfig_power import reconfig_overhead_report
from repro.fabric.device import get_device
from repro.reconfig.controller import ReconfigController
from repro.reconfig.ports import Icap, Jcap
from repro.reconfig.slots import plan_floorplan

MODULES = ("frontend", "amp_phase", "capacity", "filter")


def test_reconfig_overhead(benchmark, modules):
    device = get_device("XC3S400")
    slot_slices = max(m.compiled.slices for m in modules.values())

    def factory(port):
        plan = plan_floorplan(device, static_side_slices(), [slot_slices])
        controller = ReconfigController(plan, port)
        for name in MODULES:
            controller.prepare_module(name, 0)
        return controller

    report = benchmark.pedantic(
        lambda: reconfig_overhead_report(factory, list(MODULES)),
        rounds=1,
        iterations=1,
    )

    per_module = {}
    for row in report.rows:
        per_module.setdefault(row.port, []).append(row)
    lines = [report.summary(), "", "per-module loads (bitstream size / time):"]
    for port, rows in per_module.items():
        lines.append(f"  {port}:")
        for row in rows:
            lines.append(
                f"    {row.module:<12} {row.bitstream_bytes / 1024:8.1f} KB "
                f"{row.time_s * 1e3:9.2f} ms"
            )
    show("Reconfiguration overhead per measurement cycle", "\n".join(lines))

    # Paper relations: ICAP >> JCAP; improved JCAP > basic JCAP; only the
    # ICAP-class port fits the 100 ms cycle with this slot size.
    assert report.fits("ICAP")
    assert not report.fits("JCAP(improved)")
    assert report.total_time_s("JCAP(basic)") > report.total_time_s("JCAP(improved)")
    assert report.total_time_s("JCAP(improved)") > report.total_time_s("ICAP")
    benchmark.extra_info.update(
        {
            "icap_ms": round(report.total_time_s("ICAP") * 1e3, 2),
            "jcap_improved_ms": round(report.total_time_s("JCAP(improved)") * 1e3, 2),
            "jcap_basic_ms": round(report.total_time_s("JCAP(basic)") * 1e3, 2),
        }
    )
