"""Table 2 — per-net dynamic power before/after logic reallocation.

The paper lists signal nets of the hardware data-processing module
(ce_2_sg, mult/../n*, ...) with their dissipation before and after the
logic reallocation; the Figure-6 showcase net drops by 56 %.  Here the
full §4.3 flow runs on a structured module netlist (a mid-size block with
the data-processing modules' activity profile; the *relations*, not the
absolute digits, are what reproduces) and reports the same rows.
"""

from _util import show

from repro.core.par_power import run_power_aware_flow
from repro.fabric.device import get_device
from repro.netlist.blocks import BlockFootprint, block_netlist
from repro.par.placer import PlacerOptions

#: Representative sub-block of the amp/phase module.  Full-module PAR
#: (2100+ cells) takes minutes in pure Python; the per-net optimization
#: mechanics are size independent.
BLOCK = BlockFootprint(
    name="amp_phase_blk",
    slices=260,
    multipliers=2,
    brams=1,
    registered_fraction=0.5,
    carry_fraction=0.25,
    mean_activity=0.12,
)


def test_table2_net_reallocation(benchmark):
    netlist = block_netlist(BLOCK, seed=42, interface_nets=12)
    # Confine the block to a slot-like region at ~82 % utilization, as a
    # real module floorplan would: free sites are scarce, so reallocation
    # must trade connectivity like on the paper's design.
    from repro.fabric.grid import Region

    device = get_device("XC3S400")
    region = Region(0, 0, 10, 8)  # 99 CLBs = 396 slices for 260+3 cells
    result = benchmark.pedantic(
        lambda: run_power_aware_flow(
            netlist,
            device,
            clock_mhz=50.0,
            top_n=12,
            placer_options=PlacerOptions(steps=40, seed=3),
            region=region,
        ),
        rounds=1,
        iterations=1,
    )
    # Like the paper's Table 2, list the nets whose reallocation was
    # accepted ("Note that not all optimized signal nets are listed here").
    accepted_records = [r for r in result.optimization.records if r.accepted]
    header = f"{'Signal net':<24} {'before (uW)':>12} {'after (uW)':>12} {'Reduction (%)':>14}"
    body = header + "\n" + "\n".join(
        f"{r.net:<24} {r.power_before_uw:>12.2f} {r.power_after_uw:>12.2f} "
        f"{r.reduction_pct:>14.1f}"
        for r in accepted_records
    )
    body += (
        f"\n\nwhole-module routing power: "
        f"{result.power_before.routing_w * 1e3:.3f} mW -> "
        f"{result.power_after.routing_w * 1e3:.3f} mW "
        f"({result.routing_power_reduction_pct:.1f} % reduction)"
    )
    accepted = [r for r in result.optimization.records if r.accepted]
    show("Table 2: power optimized signal nets (measured)", body)

    # Paper relations: several nets improve; reductions in the tens of
    # percent; total power never increases.
    assert len(accepted) >= 3
    best = max(r.reduction_pct for r in result.optimization.records)
    assert best > 25.0
    assert result.power_after.routing_w <= result.power_before.routing_w
    # Nets were picked by communication rate, hottest first.
    activities = [r.activity for r in result.optimization.records]
    assert activities == sorted(activities, reverse=True)

    benchmark.extra_info.update(
        {
            "nets_optimized": len(result.optimization.records),
            "nets_improved": len(accepted),
            "best_net_reduction_pct": round(best, 1),
            "total_routing_reduction_pct": round(result.routing_power_reduction_pct, 1),
        }
    )
