"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(see DESIGN.md's experiment index).  Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the regenerated tables; key figures are also attached to each
benchmark's ``extra_info`` so they appear in ``--benchmark-json`` output.
"""

import pytest

from repro.app.modules import standard_modules
from repro.app.tank import MeasurementCircuit

try:  # pragma: no cover - presence depends on the environment
    import pytest_timeout  # noqa: F401
except ImportError:
    # Without the plugin the ``timeout`` ini key in pyproject.toml is
    # unknown; register it so benchmark runs stay warning-free (the
    # enforcing shim lives in tests/conftest.py — benchmarks are paced
    # by pytest-benchmark itself).
    def pytest_addoption(parser):
        parser.addini(
            "timeout",
            "per-test wall-clock ceiling in seconds (unused for benchmarks)",
            default="0",
        )


@pytest.fixture(scope="session")
def modules():
    """The compiled System-Generator modules (shared: compilation is
    deterministic)."""
    return standard_modules()


@pytest.fixture(scope="session")
def circuit():
    return MeasurementCircuit()
