"""Vector engine v2: mixed faulty/clean workload stays on the vector path.

Under the original sequential-stream :class:`FaultInjector`, a fault
schedule depends on draw order, so a struck request had to leave its
batch and retry through the broker's backoff path — serialized, 5 ms+
per retry, stragglers served in near-empty batches.  Counter-mode
injection makes every draw a pure function of ``(seed, request_id,
attempt)``; the executor exploits that to re-run only the faulted subset
as additional *in-batch* vectorized sweeps.

This bench serves the same 30 %-faulty fleet workload both ways on the
vector engine and asserts the ISSUE 8 acceptance floor: >= 2x requests/s
over the requeue baseline, with responses bit-identical between the
vector and scalar engines under the counter schedule (clean *and*
faulted requests alike).

Set ``BENCH_VECTOR2_JSON=path`` to also write the table as JSON (the CI
artifact ``BENCH_vector2.json``).
"""

import json
import os

from _util import show

from repro.kernels import native_status
from repro.serve import FleetService, synthetic_load
from repro.serve.batching import FaultInjector

#: ISSUE 8 workload: ~30 % of first attempts struck, harsh retry climate.
RATE = 0.30
RETRY_RATE = 0.25
BURST = 2
N_REQUESTS = 64
N_TANKS = 8
MAX_BATCH = 8
SEED = 0

#: ISSUE 8 acceptance: counter-mode in-batch sweeps vs sequential-mode
#: requeue-and-backoff, same workload, same engine.
SPEEDUP_FLOOR = 2.0


def serve(engine: str, mode: str) -> dict:
    service = FleetService(
        workers=1,
        max_batch=MAX_BATCH,
        queue_capacity=N_REQUESTS + 16,
        batched=True,
        seed=SEED,
        engine=engine,
        fault_injector=FaultInjector(
            RATE, seed=SEED, burst=BURST, retry_rate=RETRY_RATE, mode=mode
        ),
    ).start()
    # Closed-loop waves: one full batch in flight at a time, like a
    # telemetry poller that waits for each fleet sweep before issuing
    # the next.  Under requeue-and-backoff every faulted request stalls
    # its wave (serialized retry rounds, near-empty straggler batches);
    # in-batch sweeps finish the wave in one pass.
    load = synthetic_load(N_REQUESTS, n_tanks=N_TANKS)
    done = 0
    for start in range(0, N_REQUESTS, MAX_BATCH):
        accepted, rejected = service.submit_many(load[start : start + MAX_BATCH])
        assert not rejected
        done += accepted
        assert service.await_responses(done, timeout_s=300)
    assert service.shutdown()
    responses = service.responses()
    assert len(responses) == N_REQUESTS
    snap = service.metrics_snapshot()
    snap["_responses"] = {
        r.request_id: (r.status, r.attempts, r.level_measured, r.capacitance_pf)
        for r in responses
    }
    return snap


def run_all() -> dict:
    serve("vector", "counter")  # warm kernel caches before timing
    return {
        "sequential": serve("vector", "sequential"),
        "counter": serve("vector", "counter"),
        "counter_scalar": serve("scalar", "counter"),
    }


def test_vector_fault_path(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    header = (
        f"{'schedule':<18}{'engine':<9}{'req/s':>9}{'p95 ms':>9}"
        f"{'faults':>8}{'in-batch':>10}{'requeued':>10}"
    )
    lines = [header, "-" * len(header), f"native kernels: {native_status()}"]
    rows = {}
    for label, engine in (
        ("sequential", "vector"),
        ("counter", "vector"),
        ("counter_scalar", "scalar"),
    ):
        snap = results[label]
        counters = snap["counters"]
        in_batch = counters.get("retries_in_batch", 0)
        retried = counters.get("requests_retried", 0)
        rows[label] = {
            "engine": engine,
            "requests_per_s": round(snap["service"]["requests_per_s"], 1),
            "p95_latency_ms": round(
                snap["histograms"]["latency_s"]["p95"] * 1e3, 2
            ),
            "faults_injected": counters.get("faults_injected", 0),
            "retries_in_batch": in_batch,
            "retries_requeued": retried - in_batch,
        }
        r = rows[label]
        lines.append(
            f"{label:<18}{engine:<9}{r['requests_per_s']:>9.1f}"
            f"{r['p95_latency_ms']:>9.2f}{r['faults_injected']:>8}"
            f"{r['retries_in_batch']:>10}{r['retries_requeued']:>10}"
        )
    show("Fault path: in-batch sweeps vs requeue-and-backoff", "\n".join(lines))

    # The counter schedule kept every retry inside its batch; the
    # sequential baseline pushed every retry through the broker.
    assert rows["counter"]["retries_in_batch"] > 0
    assert rows["counter"]["retries_requeued"] == 0
    assert rows["sequential"]["retries_in_batch"] == 0
    assert rows["sequential"]["retries_requeued"] > 0

    # Exactness: the vector and scalar engines serve the identical
    # counter-mode schedule with bit-identical terminal responses —
    # status, attempt count and measurement values, faulted or clean.
    assert results["counter"]["_responses"] == results["counter_scalar"]["_responses"]
    faulted = sum(
        1
        for status, attempts, _lv, _c in results["counter"]["_responses"].values()
        if status == "ok" and attempts > 1
    )
    assert faulted > 0, "workload never exercised the fault path"

    speedup = rows["counter"]["requests_per_s"] / max(
        1e-9, rows["sequential"]["requests_per_s"]
    )
    assert speedup >= SPEEDUP_FLOOR, (speedup, rows)

    report = {
        "workload": {
            "requests": N_REQUESTS,
            "tanks": N_TANKS,
            "max_batch": MAX_BATCH,
            "rate": RATE,
            "retry_rate": RETRY_RATE,
            "burst": BURST,
        },
        "native_kernel": native_status(),
        "modes": rows,
        "speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "faulted_ok": faulted,
    }
    benchmark.extra_info.update(
        {
            "speedup": round(speedup, 2),
            "counter_rps": rows["counter"]["requests_per_s"],
            "sequential_rps": rows["sequential"]["requests_per_s"],
        }
    )
    out = os.environ.get("BENCH_VECTOR2_JSON")
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
