"""Ablation — wire-type mix vs power and delay.

The §4.3 premise quantified: routing the same placed design in
performance, balanced and power mode trades capacitance (dynamic power)
against delay, because of the per-wire-type electrical ordering.
"""

from _util import show

from repro.fabric.device import get_device
from repro.netlist.blocks import BlockFootprint, block_netlist
from repro.par.design import Design
from repro.par.placer import PlacerOptions, place
from repro.par.router import RouterOptions, route
from repro.par.timing import analyze_timing

BLOCK = BlockFootprint("wires_blk", slices=180, mean_activity=0.1)


def test_ablation_router_modes(benchmark):
    device = get_device("XC3S400")
    netlist = block_netlist(BLOCK, seed=5)
    placement = place(netlist, device, options=PlacerOptions(steps=25, seed=1))

    def route_all_modes():
        results = {}
        for mode in ("performance", "balanced", "power"):
            routing = route(netlist, placement, device, options=RouterOptions(mode=mode))
            design = Design(
                netlist, device, placement=placement,
                routed_nets=routing.nets, graph=routing.graph,
            )
            results[mode] = (routing, analyze_timing(design))
        return results

    results = benchmark.pedantic(route_all_modes, rounds=1, iterations=1)

    lines = [f"{'mode':<14}{'total cap pF':>14}{'wirelength':>12}{'crit path ns':>14}"]
    for mode, (routing, timing) in results.items():
        lines.append(
            f"{mode:<14}{routing.total_capacitance_pf:>14.1f}"
            f"{routing.total_wirelength:>12}{timing.critical_path_ns:>14.2f}"
        )
    show("Ablation: router mode vs capacitance and delay", "\n".join(lines))

    cap = {m: r.total_capacitance_pf for m, (r, _t) in results.items()}
    delay = {m: t.critical_path_ns for m, (_r, t) in results.items()}
    # Power routing switches less capacitance than performance routing...
    assert cap["power"] < cap["performance"]
    # ...at a delay cost.
    assert delay["performance"] <= delay["power"] * 1.01
    # Balanced sits between the extremes on capacitance.
    assert cap["power"] <= cap["balanced"] <= cap["performance"] * 1.05
    benchmark.extra_info.update({f"cap_{m}_pf": round(c, 1) for m, c in cap.items()})
