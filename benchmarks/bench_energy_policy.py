"""Energy policy vs FIFO: joules/request under paced offered load.

The tentpole claim of the energy-aware scheduler is operational, not
cosmetic: at realistic (non-saturating) offered load, pricing candidate
batches in joules/request and waiting a bounded fill window must buy a
strictly lower J/req than FIFO dispatch — *without* giving back SLO
attainment.  FIFO at paced load dispatches near-singleton batches, so
every request pays the static-power floor and the per-stage
reconfiguration energy almost alone; the energy policy amortizes both
across the batch it assembles inside the deadline slack.

Three load levels (request inter-arrival 40/20/8 ms) bracket the
regimes: slow enough that batching requires deliberately waiting, and
fast enough that even modest windows fill whole batches.  Deadlines are
a generous 30 s so the comparison isolates energy, and the assertion is
per level: ``J/req(energy) < J/req(fifo)`` and SLO attainment >= FIFO's.

Set ``BENCH_ENERGY_JSON=path`` to also write the table as JSON (the CI
artifact ``BENCH_energy.json``).
"""

import json
import os
import time

from _util import show

from repro.kernels import native_status
from repro.serve import FleetService
from repro.serve.loadgen import synthetic_load

#: (label, inter-arrival seconds) — offered load levels.
LOAD_LEVELS = (
    ("slow", 0.040),
    ("medium", 0.020),
    ("fast", 0.008),
)
N_REQUESTS, N_TANKS, MAX_BATCH = 24, 6, 16
DEADLINE_S = 30.0
#: Energy policy fill window: the maximum time the scheduler will hold
#: the device idle to let a batch accumulate (well inside the deadline).
ENERGY_WINDOW_S = 0.25


def serve_paced(policy: str, interval_s: float, seed: int) -> dict:
    service = FleetService(
        workers=1,
        max_batch=MAX_BATCH,
        queue_capacity=N_REQUESTS + 16,
        engine="vector",
        seed=seed,
        window_s=ENERGY_WINDOW_S if policy == "energy" else 0.0,
        policy=policy,
    )
    service.start()
    try:
        requests = synthetic_load(
            N_REQUESTS,
            n_tanks=N_TANKS,
            deadline_s=DEADLINE_S,
            now_s=time.monotonic(),
            seed=seed,
        )
        for request in requests:
            service.submit(request)
            time.sleep(interval_s)
        assert service.await_responses(N_REQUESTS, timeout_s=120)
        snap = service.metrics_snapshot()
        responses = service.responses()
    finally:
        service.shutdown(drain=True, timeout_s=30.0)

    ok = sum(1 for r in responses if r.ok)
    batch_sizes = [r.batch_size for r in responses if r.ok]
    return {
        "joules_per_request": snap["service"]["joules_per_request"],
        "reconfigurations": snap["service"]["reconfigurations"],
        "slo_attainment": ok / len(responses),
        "mean_batch": sum(batch_sizes) / max(1, len(batch_sizes)),
        "p95_latency_s": snap["histograms"]["latency_s"]["p95"],
    }


def run_all() -> dict:
    results = {}
    for index, (label, interval_s) in enumerate(LOAD_LEVELS):
        results[label] = {
            "interval_s": interval_s,
            "fifo": serve_paced("fifo", interval_s, seed=index),
            "energy": serve_paced("energy", interval_s, seed=index),
        }
    return results


def test_energy_policy_beats_fifo_on_joules_per_request(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    header = (
        f"{'load':<8}{'policy':<8}{'mJ/req':>9}{'batch':>7}{'SLO':>7}"
        f"{'p95 ms':>9}{'reconfigs':>11}{'savings':>9}"
    )
    lines = [header, "-" * len(header)]
    rows = []
    for label, level in results.items():
        fifo, energy = level["fifo"], level["energy"]
        savings = 1.0 - energy["joules_per_request"] / fifo["joules_per_request"]
        for policy, stats in (("fifo", fifo), ("energy", energy)):
            lines.append(
                f"{label:<8}{policy:<8}"
                f"{stats['joules_per_request'] * 1e3:>9.3f}"
                f"{stats['mean_batch']:>7.1f}"
                f"{stats['slo_attainment']:>7.2f}"
                f"{stats['p95_latency_s'] * 1e3:>9.0f}"
                f"{stats['reconfigurations']:>11}"
                + (f"{savings:>8.0%}" if policy == "energy" else f"{'':>9}")
            )
        rows.append(
            {
                "load": label,
                "interval_s": level["interval_s"],
                "fifo_mj_per_request": round(fifo["joules_per_request"] * 1e3, 4),
                "energy_mj_per_request": round(energy["joules_per_request"] * 1e3, 4),
                "savings_fraction": round(savings, 3),
                "fifo_mean_batch": round(fifo["mean_batch"], 2),
                "energy_mean_batch": round(energy["mean_batch"], 2),
                "fifo_slo_attainment": fifo["slo_attainment"],
                "energy_slo_attainment": energy["slo_attainment"],
            }
        )
    lines.append(f"native ADC kernel: {native_status()}")
    show("Energy policy vs FIFO: J/req at three offered-load levels", "\n".join(lines))

    # The tentpole acceptance bar: strictly lower J/req at equal-or-better
    # SLO attainment, at EVERY load level.
    for label, level in results.items():
        fifo, energy = level["fifo"], level["energy"]
        assert energy["joules_per_request"] < fifo["joules_per_request"], (
            label,
            energy["joules_per_request"],
            fifo["joules_per_request"],
        )
        assert energy["slo_attainment"] >= fifo["slo_attainment"], label

    report = {
        "engine": "vector",
        "native_kernel": native_status(),
        "requests_per_level": N_REQUESTS,
        "tanks": N_TANKS,
        "max_batch": MAX_BATCH,
        "deadline_s": DEADLINE_S,
        "energy_window_s": ENERGY_WINDOW_S,
        "levels": rows,
    }
    out = os.environ.get("BENCH_ENERGY_JSON")
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    benchmark.extra_info.update(
        {
            "savings_slow": rows[0]["savings_fraction"],
            "savings_medium": rows[1]["savings_fraction"],
            "savings_fast": rows[2]["savings_fraction"],
        }
    )
