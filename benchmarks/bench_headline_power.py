"""Headline C — the power argument of §4.2:

* a smaller device (enabled by reconfiguration) has less static power;
* the ~1000x faster hardware allows a reduced clock, cutting dynamic power.
"""

from _util import show

from repro.app.modules import FRAME_SAMPLES
from repro.core.reconfig_power import power_vs_clock
from repro.fabric.device import get_device
from repro.power.model import static_power_w


def test_headline_power_tradeoff(benchmark, modules):
    flat_dev = get_device("XC3S1000")
    slot_dev = get_device("XC3S400")
    small_dev = get_device("XC3S200")

    ap = modules["amp_phase"].compiled
    points = benchmark(
        lambda: power_vs_clock(
            module_slices=ap.slices,
            frame_samples=FRAME_SAMPLES,
            latency_cycles=ap.latency_cycles,
            device=slot_dev,
            clocks_mhz=[10, 25, 50, 75],
        )
    )

    lines = [
        f"static power: {flat_dev.name} {static_power_w(flat_dev) * 1e3:5.1f} mW  ->  "
        f"{slot_dev.name} {static_power_w(slot_dev) * 1e3:5.1f} mW  ->  "
        f"{small_dev.name} {static_power_w(small_dev) * 1e3:5.1f} mW",
        "",
        f"{'clock MHz':>10} {'processing us':>14} {'dynamic mW':>11} {'total mW':>9} {'deadline':>9}",
    ]
    for p in points:
        lines.append(
            f"{p.clock_mhz:>10.0f} {p.processing_time_s * 1e6:>14.2f} "
            f"{p.dynamic_power_w * 1e3:>11.2f} {p.total_power_w * 1e3:>9.2f} "
            f"{'ok' if p.meets_deadline else 'MISS':>9}"
        )
    show("Headline: static power vs device size, dynamic power vs clock", body="\n".join(lines))

    # Static power strictly falls along the downsizing chain.
    assert static_power_w(flat_dev) > static_power_w(slot_dev) > static_power_w(small_dev)
    # Dynamic power falls linearly with the clock while the deadline holds
    # even at 10 MHz — the "reduced clock frequency" argument.
    assert all(p.meets_deadline for p in points)
    assert points[0].dynamic_power_w < 0.2 * points[-1].dynamic_power_w
    benchmark.extra_info.update(
        {
            "static_xc3s1000_mw": round(static_power_w(flat_dev) * 1e3, 1),
            "static_xc3s400_mw": round(static_power_w(slot_dev) * 1e3, 1),
            "static_xc3s200_mw": round(static_power_w(small_dev) * 1e3, 1),
            "dynamic_at_10mhz_mw": round(points[0].dynamic_power_w * 1e3, 2),
            "dynamic_at_75mhz_mw": round(points[-1].dynamic_power_w * 1e3, 2),
        }
    )
