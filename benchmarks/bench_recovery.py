"""Extension — failure detection and recovery (paper introduction:
"requirements on failure detection and recovery").

An SEU is injected into the amp/phase module's configuration; the
measurement watchdog catches the implausible output; recovery happens by
partial reconfiguration of just that module — compared against the cost of
a full-device reload, the repair the non-reconfigurable system would need.
"""

from _util import show

from repro.app.failsafe import SelfHealingSystem
from repro.fabric.bitstream import BitstreamGenerator
from repro.reconfig.ports import Icap

LEVEL = 0.6


def test_fault_recovery(benchmark):
    def run_fault_scenario():
        healing = SelfHealingSystem(seed=11)
        healing.run_cycle(LEVEL)  # healthy baseline
        fault = healing.inject_module_fault("amp_phase")
        result = healing.run_cycle(LEVEL)  # detect + recover + remeasure
        return healing, fault, result

    healing, fault, result = benchmark.pedantic(run_fault_scenario, rounds=1, iterations=1)

    event = healing.recoveries[0]
    generator = BitstreamGenerator(healing.system.device)
    full_reload_s = generator.full("top").total_bytes / Icap().bytes_per_second

    body = (
        f"injected fault     : {fault}\n"
        f"detected via       : {'; '.join(event.violations)}\n"
        f"recovery           : readback scrub + frame repair of {event.module!r} in "
        f"{event.recovery_time_s * 1e3:.2f} ms\n"
        f"full-device reload : {full_reload_s * 1e3:.2f} ms (the non-PR alternative)\n"
        f"post-recovery level: {result.level_measured:.3f} (true {LEVEL})"
    )
    show("Extension: failure detection and recovery", body)

    assert len(healing.recoveries) == 1
    assert abs(result.level_measured - LEVEL) < 0.05
    # Slot-local recovery beats the full-device reload (and the system
    # never emitted the corrupted reading as its final answer).
    assert event.recovery_time_s < full_reload_s
    assert not healing.has_active_fault
    benchmark.extra_info.update(
        {
            "recovery_ms": round(event.recovery_time_s * 1e3, 2),
            "full_reload_ms": round(full_reload_s * 1e3, 2),
        }
    )
