"""Runtime chaos-recovery sweep: supervised fleet vs injected failures.

Where ``bench_verifylab_campaign.py`` strikes the simulated *device*
(SEU bursts), this bench strikes the *runtime*: seeded worker crashes
mid-batch, injected executor exceptions and clock skew, served by a
supervised :class:`repro.serve.FleetService`.  Three scenarios of
increasing hostility regenerate the recovery table; the floors asserted
here — at least 99% of admitted requests reach a terminal response in
every scenario, at least one worker restart is actually exercised, and
every ok answer still matches the differential oracle's reference — are
the claims the CI chaos artifact documents.

Crash injection runs at rate 1.0 under a fixed budget, so the injected
fault *counts* are exact per seed regardless of thread scheduling.
"""

from _util import show

from repro.verifylab import run_chaos_campaign

#: Minimum fraction of admitted requests that must reach a terminal
#: response (ok / failed / expired) in every chaos scenario.
TERMINAL_FLOOR = 0.99

#: The swept hostility axis.
SCENARIOS = [
    {
        "name": "crash",
        "kwargs": dict(crash_rate=1.0, max_crashes=2, exec_error_rate=0.0),
    },
    {
        "name": "crash+exec",
        "kwargs": dict(
            crash_rate=1.0,
            max_crashes=2,
            exec_error_rate=0.35,
            max_exec_errors=4,
        ),
    },
    {
        "name": "crash+exec+skew",
        "kwargs": dict(
            crash_rate=1.0,
            max_crashes=2,
            exec_error_rate=0.35,
            max_exec_errors=4,
            clock_skew_s=0.002,
        ),
    },
]


def _run_all():
    return [
        {
            "name": scenario["name"],
            "report": run_chaos_campaign(
                requests=32, seed=0, workers=3, **scenario["kwargs"]
            ),
        }
        for scenario in SCENARIOS
    ]


def test_chaos_recovery_floor(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    header = (
        f"{'scenario':<18}{'crashes':>8}{'faults':>7}{'restarts':>9}"
        f"{'redeliv':>8}{'terminal':>9}{'rate':>7}{'integrity':>11}"
    )
    lines = [header, "-" * len(header)]
    for result in results:
        report = result["report"]
        chaos = report["chaos"]
        recovery = report["recovery"]
        integrity = report["integrity"]
        lines.append(
            f"{result['name']:<18}{chaos['crashes_injected']:>8}"
            f"{chaos['exec_errors_injected']:>7}"
            f"{recovery['worker_restarts']:>9}"
            f"{recovery['requests_redelivered']:>8}"
            f"{report['terminal']:>6}/{report['admitted']:<2}"
            f"{report['terminal_rate'] * 100:>6.0f}%"
            f"{integrity['matching']:>6}/{integrity['checked']:<4}"
        )
    show("Chaos campaign: runtime-fault recovery under supervision", "\n".join(lines))

    for result in results:
        report = result["report"]
        name = result["name"]
        # Every scenario actually exercised the crash-restart path.
        assert report["chaos"]["crashes_injected"] >= 1, name
        assert report["recovery"]["worker_restarts"] >= 1, name
        assert report["recovery"]["requests_redelivered"] >= 1, name
        # The headline floor: admitted work reaches a terminal answer.
        assert report["terminal_rate"] >= TERMINAL_FLOOR, name
        # And nothing served after a crash or retry is wrong.
        integrity = report["integrity"]
        assert integrity["matching"] == integrity["checked"], name
        assert not integrity["mismatches"], name
        assert report["ok"], name

    benchmark.extra_info.update(
        {
            f"terminal_rate_{r['name']}": round(r["report"]["terminal_rate"], 4)
            for r in results
        }
    )
    benchmark.extra_info["restarts_total"] = sum(
        r["report"]["recovery"]["worker_restarts"] for r in results
    )
