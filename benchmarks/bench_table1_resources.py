"""Table 1 — resource utilization of the reconfigurable measurement system.

Paper (garbled numbers, relations preserved): the static area holds the
MicroBlaze, FSL, RS232 etc.; the Amp & Phase component is the largest
module; the whole system without reconfiguration needs >6000 slices (at
least an XC3S1000), with one slot it fits the XC3S400, and repartitioned
into 5 smaller modules it fits an XC3S200.
"""

from _util import show

from repro.app.modules import build_amp_phase_graph, repartitioned_modules
from repro.app.system import frontend_slices, static_side_slices
from repro.core.reconfig_power import size_devices
from repro.fabric.device import get_device
from repro.ip.ethernet import ETHERNET_FOOTPRINT
from repro.ip.profibus import PROFIBUS_FOOTPRINT
from repro.sysgen.compile import compile_graph


def test_table1_resource_utilization(benchmark, modules):
    compiled = benchmark(lambda: compile_graph(build_amp_phase_graph()))

    static = static_side_slices()
    rows = [("Static area (MicroBlaze, FSL, RS232, JCAP, glue)", static, "-", "-")]
    for name in ("amp_phase", "capacity", "filter", "frontend"):
        m = modules[name].compiled
        rows.append((f"{name} component", m.slices, m.brams, m.multipliers))
    body = f"{'component':<48}{'slices':>8}{'BRAM':>6}{'MULT':>6}\n"
    body += "\n".join(f"{n:<48}{s:>8}{b:>6}{mu:>6}" for n, s, b, mu in rows)

    sizing = size_devices(
        static_slices=static,
        resident_slices=ETHERNET_FOOTPRINT.slices + PROFIBUS_FOOTPRINT.slices,
        modules=[m.compiled for m in modules.values()],
        repartitioned=repartitioned_modules(5),
    )
    body += "\n\n" + sizing.summary()
    show("Table 1: resource utilization (measured)", body)

    # The paper's relations.
    assert modules["amp_phase"].slices == compiled.slices
    assert modules["amp_phase"].slices == max(m.slices for m in modules.values())
    assert sizing.flat_slices > 6000
    assert sizing.flat_device.name == "XC3S1000"
    assert sizing.one_slot_device.name == "XC3S400"
    assert sizing.multi_slot_device.name == "XC3S200"
    assert static + modules["amp_phase"].slices <= get_device("XC3S400").slices

    benchmark.extra_info.update(
        {
            "static_slices": static,
            "amp_phase_slices": modules["amp_phase"].slices,
            "capacity_slices": modules["capacity"].slices,
            "filter_slices": modules["filter"].slices,
            "flat_total_slices": sizing.flat_slices,
            "flat_device": sizing.flat_device.name,
            "one_slot_device": sizing.one_slot_device.name,
            "five_module_device": sizing.multi_slot_device.name,
        }
    )
