"""SEU fault-campaign sweep: recovery rate and result integrity.

The serving runtime promises that scrub-and-retry turns configuration
upsets into latency, not wrong answers.  This bench runs the verifylab
fault campaign at three swept intensities (strike rate, burst size,
retry re-strike probability) over one 40-request fleet workload and
regenerates the recovery/integrity table.  The floor asserted here — at
the low intensity at least 90% of faulted requests recover, and *every*
served answer at *every* intensity matches the differential oracle's
reference — is the claim the CI campaign artifact documents.
"""

from _util import show

from repro.verifylab import run_campaign

#: Minimum fraction of faulted requests that must recover at the lowest
#: (ordinary space-weather) intensity.
RECOVERY_FLOOR = 0.90


def test_verifylab_fault_campaign(benchmark):
    report = benchmark.pedantic(
        lambda: run_campaign(requests=40, seed=0, max_attempts=3),
        rounds=1,
        iterations=1,
    )

    header = (
        f"{'intensity':<10}{'rate':>6}{'burst':>7}{'retry':>7}"
        f"{'faulted':>9}{'recov':>7}{'rate':>7}{'retries':>9}{'integrity':>11}"
    )
    lines = [header, "-" * len(header)]
    for result in report["intensities"]:
        spec = result["intensity"]
        integrity = result["integrity"]
        lines.append(
            f"{spec['name']:<10}{spec['rate']:>6.2f}{spec['burst']:>7}"
            f"{spec['retry_rate']:>7.2f}{result['faulted']:>9}"
            f"{result['recovered']:>7}{result['recovery_rate'] * 100:>6.0f}%"
            f"{result['retries_consumed']:>9}"
            f"{integrity['matching']:>6}/{integrity['checked']:<4}"
        )
    show("Fault campaign: SEU recovery and post-scrub integrity", "\n".join(lines))

    results = report["intensities"]
    assert len(results) == 3
    # Every intensity actually exercised the fault path.
    assert all(r["faulted"] > 0 for r in results)
    # The headline floor: ordinary upset rates recover >= 90% of faulted
    # requests, and hostility only ever degrades recovery.
    assert results[0]["recovery_rate"] >= RECOVERY_FLOOR
    assert results[0]["recovery_rate"] >= results[-1]["recovery_rate"]
    # The part a recovery counter cannot show: nothing served is wrong.
    for result in results:
        integrity = result["integrity"]
        assert integrity["matching"] == integrity["checked"], result["intensity"]
    assert report["ok"]

    benchmark.extra_info.update(
        {
            f"recovery_{r['intensity']['name']}": round(r["recovery_rate"], 2)
            for r in results
        }
    )
