"""Shard scaling: aggregate throughput vs shard-process count.

The paper's cost argument is that several cheap small devices beat one
big one; ``repro.shard`` is that argument as runtime architecture.  This
bench serves the same vector-engine workload through a
:class:`repro.shard.ShardRouter` at 1, 2 and 4 shard processes and
asserts the scaling floor — plus the equivalence claim that makes the
scaling trustworthy: every shard count must produce bit-identical
measurement results (same base seed + per-tank derived seeds + tank
affinity, so the wire format and the routing cannot change any answer).

The floor is core-adaptive: shards are whole processes, so on a
multi-core box 4 shards must clear the ISSUE 6 floor of 2.5x over 1
shard, while on starved CI boxes (1-2 cores) the same architecture can
only buy modest overlap (or pure IPC overhead on a single core) and the
floor asserts the overhead stays bounded instead.

Set ``BENCH_SHARD_JSON=path`` to also write the scaling table as JSON
(the CI artifact ``BENCH_shard.json``).
"""

import json
import os
import time

from _util import show

from repro.kernels import native_status
from repro.serve.loadgen import synthetic_load
from repro.serve.requests import MeasurementRequest
from repro.shard import ShardConfig, ShardRouter

SHARD_COUNTS = (1, 2, 4)
N_REQUESTS, N_TANKS, MAX_BATCH = 192, 12, 16

_CORES = os.cpu_count() or 1
#: ISSUE 6 floor on 4-shard vs 1-shard aggregate throughput, relaxed on
#: hosts that physically lack the parallelism: with 2-3 cores real
#: overlap exists but not 4-way; on one core 4 processes only time-slice
#: and the floor instead bounds the routing + wire + restart-machinery
#: overhead (steady-state aggregate stays within ~2x of one shard).
if _CORES >= 4:
    SPEEDUP_FLOOR = 2.5
elif _CORES >= 2:
    SPEEDUP_FLOOR = 1.3
else:
    SPEEDUP_FLOOR = 0.55


#: Warmup request ids start here; they never collide with the timed load.
_WARM_BASE = 1_000_000


def _warmup_requests(router: ShardRouter, per_shard: int = 2) -> list:
    """A few throwaway requests aimed at *every* shard (dedicated warm-*
    tank ids, so the measured tanks' filter state stays untouched).  They
    pull each child process through its first-batch lazy work — numpy
    dispatch, kernel and artifact caches — which is startup cost, not
    steady-state throughput."""
    need = {shard: per_shard for shard in range(router.config.shards)}
    tanks = []
    candidate = 0
    while any(count > 0 for count in need.values()):
        tank_id = f"warm-{candidate:03d}"
        shard = router.shard_for(tank_id)
        if need[shard] > 0:
            need[shard] -= 1
            tanks.append(tank_id)
        candidate += 1
    return [
        MeasurementRequest(
            request_id=_WARM_BASE + i,
            tank_id=tank_id,
            level=0.5,
            pipeline=("frontend", "amp_phase", "capacity", "filter"),
        )
        for i, tank_id in enumerate(tanks)
    ]


def serve_sharded(shards: int) -> dict:
    config = ShardConfig(
        shards=shards,
        workers_per_shard=1,
        max_batch=MAX_BATCH,
        queue_capacity=N_REQUESTS + 64,
        engine="vector",
        seed=0,
    )
    router = ShardRouter(config).start()
    warmup = _warmup_requests(router)
    warmed, rejected = router.submit_many(warmup)
    assert not rejected
    assert router.await_responses(warmed, timeout_s=300)

    t0 = time.perf_counter()
    accepted, rejected = router.submit_many(
        synthetic_load(N_REQUESTS, n_tanks=N_TANKS, seed=0)
    )
    assert not rejected
    assert router.await_responses(warmed + accepted, timeout_s=300)
    elapsed = time.perf_counter() - t0

    snap = router.metrics_snapshot()
    assert router.shutdown()
    responses = [r for r in router.responses() if r.request_id < _WARM_BASE]
    assert all(r.ok for r in responses)
    # Steady-state throughput: process startup and first-batch warmup are
    # excluded (they amortize away in a long-running fleet).
    snap["service"]["requests_per_s"] = accepted / elapsed
    snap["_levels"] = {r.request_id: r.level_measured for r in responses}
    return snap


def run_all() -> dict:
    return {n: serve_sharded(n) for n in SHARD_COUNTS}


def test_shard_scaling(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    base_rps = results[1]["service"]["requests_per_s"]
    header = (
        f"{'shards':<8}{'req/s':>9}{'speedup':>9}{'p95 ms':>8}"
        f"{'mJ/req':>9}{'reconfigs':>11}"
    )
    lines = [
        header,
        "-" * len(header),
        f"cores: {_CORES}, floor: {SPEEDUP_FLOOR}x, native ADC kernel: {native_status()}",
    ]
    rows = []
    for shards, snap in results.items():
        service = snap["service"]
        speedup = service["requests_per_s"] / max(1e-9, base_rps)
        rows.append(
            {
                "shards": shards,
                "requests_per_s": round(service["requests_per_s"], 1),
                "speedup_vs_1": round(speedup, 2),
                "p95_latency_ms": round(snap["histograms"]["latency_s"]["p95"] * 1e3, 1),
                "joules_per_request": service["joules_per_request"],
                "reconfigurations": service["reconfigurations"],
            }
        )
        lines.append(
            f"{shards:<8}{service['requests_per_s']:>9.1f}{speedup:>8.2f}x"
            f"{snap['histograms']['latency_s']['p95'] * 1e3:>8.0f}"
            f"{service['joules_per_request'] * 1e3:>9.3f}"
            f"{service['reconfigurations']:>11}"
        )
    show("Shard scaling: aggregate throughput vs shard processes", "\n".join(lines))

    # Routing and the wire format must not change a single answer: every
    # shard count serves bit-identical measurement results.
    for shards in SHARD_COUNTS[1:]:
        assert results[shards]["_levels"] == results[1]["_levels"], shards
        assert len(results[shards]["_levels"]) == N_REQUESTS

    speedup_at_4 = results[4]["service"]["requests_per_s"] / max(1e-9, base_rps)
    assert speedup_at_4 >= SPEEDUP_FLOOR, (speedup_at_4, _CORES, SPEEDUP_FLOOR)

    report = {
        "cores": _CORES,
        "speedup_floor": SPEEDUP_FLOOR,
        "engine": "vector",
        "native_kernel": native_status(),
        "requests": N_REQUESTS,
        "tanks": N_TANKS,
        "max_batch": MAX_BATCH,
        "speedup_at_4": round(speedup_at_4, 2),
        "scaling": rows,
    }
    out = os.environ.get("BENCH_SHARD_JSON")
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    benchmark.extra_info.update(
        {
            "cores": _CORES,
            "floor": SPEEDUP_FLOOR,
            "speedup_at_4": round(speedup_at_4, 2),
            "rps_1_shard": round(base_rps, 1),
            "rps_4_shards": round(results[4]["service"]["requests_per_s"], 1),
        }
    )
