"""Headline B — "the software algorithms required more than 60 Kbyte of
memory, which made it necessary to store the code in external SRAM"; the
hardware modules eliminate that demand.
"""

from _util import show

from repro.app.software import MeasurementSoftware
from repro.fabric.device import SPARTAN3


def test_headline_memory(benchmark, circuit):
    software = benchmark(lambda: MeasurementSoftware(circuit))

    rows = []
    for dev in SPARTAN3[:4]:
        fits = software.fits_in_bram(dev.bram_bytes)
        rows.append(
            f"  {dev.name:<10} BRAM {dev.bram_bytes / 1024:6.1f} KB -> "
            f"{'fits' if fits else 'needs external SRAM'}"
        )
    body = (
        f"software image: {software.image_bytes / 1024:.1f} KB "
        f"(kernel+tables {software.program.image_bytes / 1024:.1f} KB "
        f"+ runtime/library overhead)\n"
        f"[paper: 'more than 60 Kbyte']\n" + "\n".join(rows)
    )
    show("Headline: software memory image vs on-chip BRAM", body)

    assert software.image_bytes > 60 * 1024
    for dev in SPARTAN3[:3]:  # XC3S50/200/400 all too small
        assert not software.fits_in_bram(dev.bram_bytes)
    benchmark.extra_info["image_kb"] = round(software.image_bytes / 1024, 1)
