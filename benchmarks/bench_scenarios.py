"""Long-horizon scenario families: the costs the short benches never see.

Three tables, one per family:

* **drift** — what periodic recalibration costs: the same measurement
  stream served with and without its calibrate requests, comparing total
  simulated energy, J/request and throughput.  Recalibration must cost
  *something* (each calibrate request runs a full device cycle) but the
  overhead must stay in proportion to the calibrate fraction.
* **thermal** — J/request with a live thermal governor vs the same
  workload cold: the junction heats, leakage doubles per 25 degC, the
  hot fleet must pay measurably more per request.
* **priority** — a flash-crowd overload against a tiered fleet: alarm
  p99 AND alarm shed rate must both be *strictly* better than routine —
  the whole point of the tier.

The absolute numbers are shared-CI noise; what must hold everywhere is
the ordering (hot > cold, with-recal > without, alarm < routine) and the
accounting.  Set ``BENCH_SCENARIOS_JSON=path`` to write the three tables
as JSON (the CI artifact ``BENCH_scenarios.json``).
"""

import dataclasses
import json
import os
import time

from _util import show

from repro.scenarios import DriftCorrector, generate_drift_scenario
from repro.scenarios.thermal import generate_thermal_scenario
from repro.serve.metrics import Histogram
from repro.serve.pool import FleetService
from repro.serve.requests import (
    KIND_MEASURE,
    PRIORITY_ALARM,
    BrokerFullError,
    MeasurementRequest,
    priority_class,
)
from repro.serve.batching import STANDARD_PIPELINE

DRIFT_SEED = 7
THERMAL_SEED = 7

#: Flash-crowd shape: one worker, a burst far deeper than the deadline
#: window admits, one alarm per eight requests.  The alarm fraction must
#: stay well below the deadline fraction: an alarm waits only behind the
#: alarm backlog (~burst/ALARM_EVERY requests), a routine request behind
#: everything, so the tier's p99 win is structural, not timing luck.
BURST_REQUESTS = 160
ALARM_EVERY = 8
WARMUP_REQUESTS = 12
#: Deadline window as a fraction of the estimated full-burst drain time:
#: deep routine positions cannot make it (shed), alarm positions can.
DEADLINE_FRACTION = 0.3


def _serve_scenario(requests, *, seed, circuit, max_batch, noise_rms,
                    corrector=None, thermal=None):
    service = FleetService(
        workers=1,
        max_batch=max_batch,
        queue_capacity=len(requests) + 16,
        batched=True,
        seed=seed,
        noise_rms=noise_rms,
        corrector=corrector,
        thermal=thermal,
    )
    # Scenario circuits ride through SystemConfig in repro.scenarios; the
    # bench compares like against like, so the default circuit is fine.
    accepted, rejected = service.submit_many(requests)
    assert not rejected
    t0 = time.perf_counter()
    service.start()
    assert service.await_responses(accepted, timeout_s=300.0)
    wall_s = time.perf_counter() - t0
    snap = service.metrics_snapshot()
    service.shutdown()
    return snap, wall_s


def run_drift() -> dict:
    scenario = generate_drift_scenario(DRIFT_SEED, max_requests=48)
    control = dataclasses.replace(
        scenario,
        entries=tuple(
            (t, lv, k) for t, lv, k in scenario.entries if k == KIND_MEASURE
        ),
    )
    rows = {}
    for label, scn, corrector in (
        ("with_recal", scenario, DriftCorrector(scenario)),
        ("no_recal", control, DriftCorrector(control)),
    ):
        snap, wall_s = _serve_scenario(
            scn.requests(),
            seed=scn.seed,
            circuit=scn.circuit,
            max_batch=scn.max_batch,
            noise_rms=scn.noise_rms,
            corrector=corrector,
        )
        rows[label] = {
            "requests": scn.n_requests,
            "calibrations": len(scn.calibrate_ids()),
            "energy_j": snap["gauges"]["energy_j"],
            "joules_per_request": snap["service"]["joules_per_request"],
            "wall_s": round(wall_s, 3),
            "throughput_rps": round(scn.n_requests / wall_s, 1),
        }
    with_r, without = rows["with_recal"], rows["no_recal"]
    overhead = (with_r["energy_j"] - without["energy_j"]) / without["energy_j"]
    rows["energy_overhead_pct"] = round(100 * overhead, 2)
    rows["calibrate_fraction_pct"] = round(
        100 * with_r["calibrations"] / with_r["requests"], 2
    )
    return rows


def run_thermal() -> dict:
    scenario = generate_thermal_scenario(THERMAL_SEED, max_requests=32)
    rows = {}
    governor = scenario.governor()
    for label, thermal in (("governed_hot", governor), ("cold", None)):
        snap, wall_s = _serve_scenario(
            scenario.requests(),
            seed=scenario.seed,
            circuit=scenario.circuit,
            max_batch=scenario.max_batch,
            noise_rms=scenario.noise_rms,
            thermal=thermal,
        )
        rows[label] = {
            "requests": scenario.n_requests,
            "energy_j": snap["gauges"]["energy_j"],
            "joules_per_request": snap["service"]["joules_per_request"],
            "wall_s": round(wall_s, 3),
        }
        if thermal is not None:
            t = thermal.snapshot()
            rows[label].update(
                hottest_c=round(t["hottest_c"], 2),
                derate_events=t["derate_events"],
                final_max_batch=t["max_batch"],
            )
    hot, cold = rows["governed_hot"], rows["cold"]
    rows["hot_vs_cold_jreq_pct"] = round(
        100
        * (hot["joules_per_request"] - cold["joules_per_request"])
        / cold["joules_per_request"],
        2,
    )
    return rows


def _p99(state: dict) -> float:
    histogram = Histogram.from_state(state)
    return histogram.percentile(99.0) if histogram.count else 0.0


def run_priority() -> dict:
    service = FleetService(
        workers=1, max_batch=4, queue_capacity=BURST_REQUESTS + 64,
        batched=True, seed=0,
    )
    service.start()
    rid = 0
    try:
        # Warm the admission EWMA so shedding is live for the burst.
        warmup = []
        for _ in range(WARMUP_REQUESTS):
            warmup.append(MeasurementRequest(
                request_id=rid, tank_id=f"tank-{rid % 6:03d}", level=0.5,
                pipeline=STANDARD_PIPELINE,
            ))
            rid += 1
        accepted, rejected = service.submit_many(warmup)
        assert not rejected
        assert service.await_responses(accepted, timeout_s=300.0)

        per_request_s = service.admission.per_request_s()
        assert per_request_s > 0.0
        window_s = per_request_s * BURST_REQUESTS * DEADLINE_FRACTION

        submitted = {"alarm": 0, "routine": 0}
        shed = {"alarm": 0, "routine": 0}
        accepted_n = 0
        for i in range(BURST_REQUESTS):
            priority = PRIORITY_ALARM if i % ALARM_EVERY == ALARM_EVERY - 1 else 0
            tier = priority_class(priority)
            # Alarms come from the alarming tank, not the routine poll
            # rotation: per-tank FIFO (the correctness invariant) would
            # otherwise pin each alarm behind the poll of its own tank
            # that was admitted moments earlier.
            tank = "tank-alarm" if priority else f"tank-{rid % 6:03d}"
            request = MeasurementRequest(
                request_id=rid, tank_id=tank, level=0.5,
                pipeline=STANDARD_PIPELINE, priority=priority,
                deadline_s=service.broker.clock() + window_s,
            )
            rid += 1
            submitted[tier] += 1
            try:
                service.submit(request)
                accepted_n += 1
            except BrokerFullError:  # OverloadShedError included
                shed[tier] += 1
        assert service.await_responses(WARMUP_REQUESTS + accepted_n, timeout_s=300.0)
        snap = service.metrics_snapshot()
        states = service.metrics.snapshot(include_reservoirs=True)[
            "histogram_states"
        ]
    finally:
        service.shutdown()

    report = {
        "burst_requests": BURST_REQUESTS,
        "deadline_window_s": round(window_s, 4),
        "per_request_s": round(per_request_s, 5),
    }
    for tier in ("alarm", "routine"):
        count = submitted[tier]
        report[tier] = {
            "submitted": count,
            "shed": shed[tier],
            "shed_rate": round(shed[tier] / count, 4) if count else 0.0,
            "shed_counter": snap["counters"].get(
                f"requests_shed_early_{tier}", 0
            ),
            "p99_s": round(_p99(states.get(f"latency_{tier}_s", {"reservoir": [], "count": 0, "mean": 0.0, "min": None, "max": None})), 5),
        }
    return report


def run_all() -> dict:
    return {
        "drift": run_drift(),
        "thermal": run_thermal(),
        "priority": run_priority(),
    }


def test_scenario_families(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    drift, thermal, priority = (
        results["drift"], results["thermal"], results["priority"],
    )

    lines = [
        "drift:    recal energy overhead "
        f"{drift['energy_overhead_pct']:+.2f}% for "
        f"{drift['calibrate_fraction_pct']:.1f}% calibrate traffic "
        f"({drift['with_recal']['joules_per_request']:.4f} vs "
        f"{drift['no_recal']['joules_per_request']:.4f} J/req)",
        "thermal:  hot J/req "
        f"{thermal['governed_hot']['joules_per_request']:.4f} vs cold "
        f"{thermal['cold']['joules_per_request']:.4f} "
        f"({thermal['hot_vs_cold_jreq_pct']:+.2f}%), junction peaked at "
        f"{thermal['governed_hot']['hottest_c']:.1f} C, "
        f"{thermal['governed_hot']['derate_events']} derate events",
        "priority: alarm p99 "
        f"{priority['alarm']['p99_s'] * 1e3:.1f} ms / shed "
        f"{priority['alarm']['shed_rate']:.1%}  vs  routine p99 "
        f"{priority['routine']['p99_s'] * 1e3:.1f} ms / shed "
        f"{priority['routine']['shed_rate']:.1%}",
    ]
    show("Long-horizon scenarios: drift / thermal / priority", "\n".join(lines))

    # Drift: recalibration costs energy, in proportion (each calibrate
    # request is one extra device cycle, so the overhead cannot exceed a
    # few times the calibrate fraction).
    assert drift["with_recal"]["energy_j"] > drift["no_recal"]["energy_j"]
    assert drift["energy_overhead_pct"] > 0.0
    assert drift["energy_overhead_pct"] < 4.0 * drift["calibrate_fraction_pct"]

    # Thermal: the governed fleet got hot and paid for it.
    assert thermal["governed_hot"]["hottest_c"] > 60.0
    assert thermal["governed_hot"]["derate_events"] >= 1
    assert (
        thermal["governed_hot"]["joules_per_request"]
        > thermal["cold"]["joules_per_request"]
    )

    # Priority under overload: the flash crowd actually overloaded, and
    # the alarm tier is strictly better on BOTH axes (the acceptance
    # criterion of the tier design).
    alarm, routine = priority["alarm"], priority["routine"]
    assert routine["shed"] > 0, priority
    assert alarm["shed_rate"] < routine["shed_rate"], priority
    # Strictly better with real margin: the alarm tail is bounded by the
    # alarm backlog alone, a fraction of what routine requests sit behind.
    assert 0.0 < alarm["p99_s"] < 0.75 * routine["p99_s"], priority
    # Counter cross-check: early sheds were attributed to the right class.
    assert routine["shed_counter"] == routine["shed"]
    assert alarm["shed_counter"] == alarm["shed"]

    benchmark.extra_info.update(
        drift_overhead_pct=drift["energy_overhead_pct"],
        thermal_hot_vs_cold_pct=thermal["hot_vs_cold_jreq_pct"],
        alarm_p99_s=alarm["p99_s"],
        routine_p99_s=routine["p99_s"],
        alarm_shed_rate=alarm["shed_rate"],
        routine_shed_rate=routine["shed_rate"],
    )

    out = os.environ.get("BENCH_SCENARIOS_JSON")
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
