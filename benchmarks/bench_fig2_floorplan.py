"""Figure 2 — the reconfigurable measurement system's floorplan.

Static side (MicroBlaze, FSL, interfaces, JCAP) on the left; one
column-aligned reconfigurable slot on the dynamic side; slice-based bus
macros on the border carrying the FSL extension.
"""

from _util import show

from repro.app.system import static_side_slices
from repro.fabric.device import get_device
from repro.reconfig.slots import plan_floorplan


def test_fig2_floorplan(benchmark, modules):
    device = get_device("XC3S400")
    slot_slices = max(m.compiled.slices for m in modules.values())
    slot_signals = max(m.compiled.interface_nets for m in modules.values())

    plan = benchmark(
        lambda: plan_floorplan(device, static_side_slices(), [slot_slices], [slot_signals])
    )

    slot = plan.slots[0]
    body = (
        f"device          : {device.name} ({device.clb_columns}x{device.clb_rows} CLBs)\n"
        f"static side     : {plan.static_region} "
        f"({plan.static_slices} slice sites for {static_side_slices()} slices)\n"
        f"dynamic slot    : {slot.region} "
        f"({slot.slice_capacity(device)} slice sites for the {slot_slices}-slice amp/phase module)\n"
        f"bus macros      : {len(slot.busmacros)} x 8 signals at column {slot.region.x_min}\n"
        f"unused columns  : {device.clb_columns - plan.static_region.width - slot.region.width}"
    )
    show("Figure 2: static/dynamic floorplan (measured)", body)

    plan.validate()
    assert slot.region.is_column_aligned(device)
    assert not plan.static_region.overlaps(slot.region)
    assert slot.slice_capacity(device) >= slot_slices
    assert len(slot.busmacros) * 8 >= slot_signals
    benchmark.extra_info.update(
        {
            "device": device.name,
            "static_columns": plan.static_region.width,
            "slot_columns": slot.region.width,
            "busmacros": len(slot.busmacros),
        }
    )
