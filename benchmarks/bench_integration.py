"""§4.1 — integration of the external DA/AD converters into the FPGA.

Cost and power of the discrete converter chips versus the on-chip
delta-sigma cores, including the further refinement of configuring the
converters only during the sampling phase.
"""

from _util import show

from repro.core.integration import analyze_converter_integration


def test_converter_integration(benchmark):
    report = benchmark(analyze_converter_integration)

    show("Section 4.1: converter integration (measured)", report.summary())

    assert report.bom_saving_usd > 5.0
    assert report.integrated_power_mw < report.external_power_mw
    assert report.on_demand_power_mw < report.integrated_power_mw / 100
    assert report.opb_interface_slices_saved > 0
    benchmark.extra_info.update(
        {
            "bom_saving_usd": round(report.bom_saving_usd, 2),
            "external_power_mw": round(report.external_power_mw, 1),
            "integrated_power_mw": round(report.integrated_power_mw, 1),
            "on_demand_power_mw": round(report.on_demand_power_mw, 3),
        }
    )
