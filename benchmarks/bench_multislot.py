"""Extension — slot arrangements vs the Spartan-3 JCAP bottleneck.

The single-slot system (the paper's) misses the 100 ms cycle over JCAP.
Keeping the amp/phase module resident in its own slot and rotating only
the smaller modules through a second slot shrinks per-cycle bitstream
traffic enough for the JCAP to fit — at the price of a larger device.
This is the design-space answer to the paper's closing caveat about the
JCAP reconfiguration rate.
"""

from _util import show

from repro.app.system import static_side_slices
from repro.reconfig.multislot import compare_arrangements
from repro.reconfig.ports import Icap, Jcap


def test_slot_arrangements(benchmark, modules):
    compiled = [m.compiled for m in modules.values()]

    reports = benchmark.pedantic(
        lambda: compare_arrangements(
            static_side_slices(),
            compiled,
            "amp_phase",
            {"jcap": Jcap(improved=True), "icap": Icap()},
        ),
        rounds=1,
        iterations=1,
    )

    lines = [
        f"{'arrangement':<28} {'device':>10} {'static mW':>10} "
        f"{'loads':>6} {'reconfig ms':>12} {'fits 100ms':>11}"
    ]
    for r in reports:
        lines.append(
            f"{r.name:<28} {r.device:>10} {r.static_power_w * 1e3:>10.1f} "
            f"{r.loads_per_cycle:>6} {r.reconfig_time_per_cycle_s * 1e3:>12.2f} "
            f"{str(r.fits_period):>11}"
        )
    show("Extension: slot arrangements vs the JCAP bottleneck", "\n".join(lines))

    by_name = {r.name: r for r in reports}
    assert not by_name["single-slot/jcap"].fits_period       # the paper's caveat
    assert by_name["resident-amp_phase/jcap"].fits_period    # the remedy
    assert by_name["single-slot/icap"].fits_period
    # The remedy costs area/static power.
    assert (
        by_name["resident-amp_phase/jcap"].static_power_w
        >= by_name["single-slot/jcap"].static_power_w
    )
    benchmark.extra_info.update(
        {
            "single_slot_jcap_ms": round(
                by_name["single-slot/jcap"].reconfig_time_per_cycle_s * 1e3, 1
            ),
            "resident_jcap_ms": round(
                by_name["resident-amp_phase/jcap"].reconfig_time_per_cycle_s * 1e3, 1
            ),
            "resident_device": by_name["resident-amp_phase/jcap"].device,
        }
    )
