"""Figure 1 — the FPGA-based level measurement loop.

The system diagram: sinus generator -> DA converter -> tank -> AD
converter -> data processing.  Verified as physics: the *measured*
channel transfer (amplitude ratio and phase shift extracted from the
digitised signals) must match the analytic divider transfer H(f) the tank
model predicts, across fill levels — i.e. the loop's converters and
filters are transparent to the measurement.
"""

import cmath

import numpy as np
from _util import show

from repro.app.dsp import amplitude_phase
from repro.app.frontend import AnalogFrontEnd

LEVELS = (0.15, 0.5, 0.85)


def test_fig1_measurement_loop(benchmark, circuit):
    fe = AnalogFrontEnd(circuit, noise_rms=0.0, seed=1)

    def run_loop():
        rows = []
        for level in LEVELS:
            cyc = fe.sample_cycle(level, 512)
            m_amp, m_ph = amplitude_phase(cyc.meas, cyc.tone_hz, cyc.sample_rate_hz)
            r_amp, r_ph = amplitude_phase(cyc.ref, cyc.tone_hz, cyc.sample_rate_hz)
            measured = (m_amp / r_amp) * cmath.exp(1j * (m_ph - r_ph))
            analytic = complex(circuit.tank_transfer(level, cyc.tone_hz)) / complex(
                circuit.reference_transfer(cyc.tone_hz)
            )
            rows.append((level, measured, analytic))
        return rows

    rows = benchmark.pedantic(run_loop, rounds=1, iterations=1)

    lines = [
        f"{'level':>6} {'measured |H|ratio':>18} {'analytic':>9} "
        f"{'measured dphi':>14} {'analytic':>9}"
    ]
    for level, measured, analytic in rows:
        lines.append(
            f"{level:>6.2f} {abs(measured):>18.4f} {abs(analytic):>9.4f} "
            f"{cmath.phase(measured):>14.4f} {cmath.phase(analytic):>9.4f}"
        )
    show("Figure 1: DA -> tank -> AD loop, measured vs analytic transfer", "\n".join(lines))

    import pytest

    # The residual deviation (a few percent at high fill, where the tank
    # channel's amplitude is smallest) is the one-bit modulators' signal-
    # dependent gain — the same converter effect bounding the system's
    # ~1.5 % level accuracy.
    for _level, measured, analytic in rows:
        assert abs(measured) == pytest.approx(abs(analytic), rel=0.05)
        assert abs(cmath.phase(measured) - cmath.phase(analytic)) < 0.05
    benchmark.extra_info["levels_checked"] = len(rows)
