"""Helpers shared by the benchmark modules."""


def show(title: str, body: str) -> None:
    """Print a regenerated table under a banner (visible with ``-s``)."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}")
