"""Fleet serving throughput: batched vs per-request slot reconfiguration.

The paper's system reconfigures its single slot for every pipeline stage
of every measurement.  ``repro.serve`` amortizes that: a batch of N
same-pipeline requests pays ``len(pipeline)`` slot loads instead of
``N * len(pipeline)``.  This bench serves the same synthetic fleet
workload through both modes at three load levels and regenerates the
requests/s, reconfiguration and energy comparison.
"""

from _util import show

from repro.serve import FleetService, synthetic_load

#: (label, n_requests, n_tanks, max_batch)
LOADS = [
    ("light", 8, 2, 8),
    ("medium", 24, 6, 8),
    ("heavy", 48, 8, 16),
]


def serve(n_requests: int, n_tanks: int, max_batch: int, batched: bool) -> dict:
    service = FleetService(
        workers=2,
        max_batch=max_batch,
        queue_capacity=n_requests + 16,
        batched=batched,
        seed=0,
    ).start()
    accepted, rejected = service.submit_many(synthetic_load(n_requests, n_tanks=n_tanks))
    assert not rejected
    assert service.await_responses(accepted, timeout_s=300)
    assert service.shutdown()
    assert all(r.ok for r in service.responses())
    return service.metrics_snapshot()


def run_all() -> dict:
    return {
        label: {
            "batched": serve(n, tanks, batch, batched=True),
            "per-request": serve(n, tanks, batch, batched=False),
        }
        for label, n, tanks, batch in LOADS
    }


def test_serve_throughput(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    header = (
        f"{'load':<8}{'mode':<13}{'req/s':>8}{'p95 ms':>8}"
        f"{'reconfigs':>11}{'avoided':>9}{'mJ/req':>9}{'cache':>7}"
    )
    lines = [header, "-" * len(header)]
    for label, modes in results.items():
        for mode, snap in modes.items():
            svc = snap["service"]
            lines.append(
                f"{label:<8}{mode:<13}"
                f"{svc['requests_per_s']:>8.1f}"
                f"{snap['histograms']['latency_s']['p95'] * 1e3:>8.0f}"
                f"{svc['reconfigurations']:>11}"
                f"{svc['reconfigurations_avoided']:>9}"
                f"{svc['joules_per_request'] * 1e3:>9.3f}"
                f"{snap['cache']['hit_rate'] * 100:>6.0f}%"
            )
    show("Fleet serving: batched vs per-request reconfiguration", "\n".join(lines))

    for label, modes in results.items():
        b, u = modes["batched"]["service"], modes["per-request"]["service"]
        # The headline claim: batching cuts slot reconfigurations >= 5x
        # and raises throughput, at every load level.
        assert u["reconfigurations"] >= 5 * b["reconfigurations"], label
        assert b["requests_per_s"] > u["requests_per_s"], label
        assert b["reconfigurations_avoided"] > 0, label
        # The shared artifact cache serves every repeated module load.
        assert modes["batched"]["cache"]["hit_rate"] > 0, label
        # Fewer reconfigurations -> less energy per measurement.
        assert b["joules_per_request"] < u["joules_per_request"], label

    medium = results["medium"]
    benchmark.extra_info.update(
        {
            "batched_rps": round(medium["batched"]["service"]["requests_per_s"], 1),
            "per_request_rps": round(
                medium["per-request"]["service"]["requests_per_s"], 1
            ),
            "reconfig_ratio": round(
                medium["per-request"]["service"]["reconfigurations"]
                / max(1, medium["batched"]["service"]["reconfigurations"]),
                1,
            ),
            "cache_hit_rate": round(medium["batched"]["cache"]["hit_rate"], 2),
        }
    )
