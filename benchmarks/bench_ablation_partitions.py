"""Ablation — module partition count.

"By re-partitioning the modules into e.g. 5 reconfigurable modules of
smaller sizes, the system could be implemented on a Spartan-3 200":
sweeping the partition count trades slot size (hence device size and
static power) against per-cycle reconfiguration time.
"""

from _util import show

from repro.app.modules import build_processing_graph
from repro.app.system import static_side_slices
from repro.core.reconfig_power import partition_study
from repro.fabric.device import get_device
from repro.power.model import static_power_w
from repro.sysgen.compile import split_into_modules

COUNTS = (1, 2, 3, 5, 7)


def test_ablation_partition_count(benchmark):
    graph = build_processing_graph()

    study = benchmark.pedantic(
        lambda: partition_study(
            lambda n: split_into_modules(graph, n),
            static_slices=static_side_slices(),
            counts=list(COUNTS),
        ),
        rounds=1,
        iterations=1,
    )

    lines = [
        f"{'modules':>8} {'max module slices':>18} {'device':>10} "
        f"{'static mW':>10} {'reconfig/cycle ms':>18}"
    ]
    for count, max_slices, device, t in zip(
        study.counts, study.max_module_slices, study.devices, study.reconfig_times_s
    ):
        lines.append(
            f"{count:>8} {max_slices:>18} {device:>10} "
            f"{static_power_w(get_device(device)) * 1e3:>10.1f} {t * 1e3:>18.2f}"
        )
    show("Ablation: partition count vs device size and reconfig overhead", "\n".join(lines))

    # More partitions -> smaller largest module -> never a bigger device.
    assert list(study.max_module_slices) == sorted(study.max_module_slices, reverse=True)
    sizes = [get_device(d).slices for d in study.devices]
    assert sizes == sorted(sizes, reverse=True)
    # The paper's data points: 1 slot on XC3S400 (or larger), 5 slots reach
    # the XC3S200.
    by_count = dict(zip(study.counts, study.devices))
    assert by_count[5] == "XC3S200"
    benchmark.extra_info.update(
        {f"device_{c}": d for c, d in zip(study.counts, study.devices)}
    )
