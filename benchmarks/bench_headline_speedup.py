"""Headline A — "the processing performance increased with approximately a
factor 1000, from 7 ms of processing time for the software-based
algorithms to 7 us (without performing reconfiguration)".

The software number comes from actually executing the ported algorithms on
the soft-core simulator (soft-float, code in wait-stated external SRAM at
the 25 MHz MicroBlaze clock); the hardware number from the pipelined
module latencies at the 75 MHz module clock.
"""

from _util import show

from repro.app.frontend import AnalogFrontEnd
from repro.app.modules import FRAME_SAMPLES
from repro.app.software import MeasurementSoftware
from repro.app.system import HW_CLOCK_MHZ, MICROBLAZE_CLOCK_MHZ


def test_headline_speedup(benchmark, modules, circuit):
    fe = AnalogFrontEnd(circuit, seed=3)
    cycle = fe.sample_cycle(0.5, FRAME_SAMPLES)
    software = MeasurementSoftware(circuit, FRAME_SAMPLES, fe.output_rate_hz, fe.tone_hz)

    result = benchmark.pedantic(
        lambda: software.run(cycle.meas, cycle.ref), rounds=1, iterations=1
    )
    sw_time = result.time_s(MICROBLAZE_CLOCK_MHZ)

    hw_clock = min(HW_CLOCK_MHZ, min(m.compiled.fmax_mhz for m in modules.values()))
    ap = modules["amp_phase"].compiled
    hw_amp_phase = ap.processing_time_us(FRAME_SAMPLES, hw_clock) * 1e-6
    hw_total = hw_amp_phase + sum(
        modules[n].compiled.latency_cycles / (hw_clock * 1e6) for n in ("capacity", "filter")
    )
    speedup = sw_time / hw_total

    body = (
        f"software (MicroBlaze @ {MICROBLAZE_CLOCK_MHZ:.0f} MHz, ext. SRAM):"
        f" {sw_time * 1e3:8.2f} ms   ({result.cycles} cycles, "
        f"{result.instructions} instructions)      [paper: 7 ms]\n"
        f"hardware modules  (@ {hw_clock:.0f} MHz):\n"
        f"  amp/phase : {hw_amp_phase * 1e6:8.2f} us                      [paper: 7 us]\n"
        f"  + capacity + filter -> total {hw_total * 1e6:8.2f} us\n"
        f"speedup: {speedup:8.0f} x                                 [paper: ~1000 x]"
    )
    show("Headline: software vs hardware processing time", body)

    assert 4e-3 < sw_time < 12e-3      # "7 ms" regime
    assert 4e-6 < hw_amp_phase < 12e-6  # "7 us" regime
    assert 300 < speedup < 3000        # "approximately a factor 1000"
    benchmark.extra_info.update(
        {
            "software_ms": round(sw_time * 1e3, 3),
            "hw_amp_phase_us": round(hw_amp_phase * 1e6, 2),
            "hw_total_us": round(hw_total * 1e6, 2),
            "speedup_x": round(speedup),
            "paper_speedup_x": 1000,
        }
    )
