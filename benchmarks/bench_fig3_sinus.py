"""Figure 3 — the FPGA-based sinus generator with internal DA converter.

Paper: a 32-entry sine LUT swept at 16 MHz yields the 500 kHz tone; "by
performing real hardware tests and Fourier analysis it was concluded that
the delta-sigma DA-converter could run with a frequency high enough to
generate a 500 kHz sinus signal"; removing the unused OPB interface cut
the core's resources; the complete generator lands near 150 slices.
"""

import numpy as np
from _util import show

from repro.ip.delta_sigma import DAC_FOOTPRINT, DAC_FOOTPRINT_WITH_OPB, DeltaSigmaDac
from repro.ip.sinus import SINUS_FOOTPRINT, SinusGenerator

PERIODS = 64


def _spectrum(dac, analog):
    windowed = analog * np.hanning(analog.size)
    spec = np.abs(np.fft.rfft(windowed))
    freqs = np.fft.rfftfreq(analog.size, 1.0 / dac.modulator_hz)
    return freqs, spec


def test_fig3_sinus_generator_spectrum(benchmark):
    sg = SinusGenerator(amplitude=0.7)
    dac = DeltaSigmaDac()
    samples = sg.normalized_samples(32 * PERIODS)

    analog = benchmark(lambda: dac.convert(samples))

    freqs, spec = _spectrum(dac, analog)
    peak_idx = np.argmax(spec[1:]) + 1
    peak_hz = freqs[peak_idx]
    fundamental = spec[peak_idx]
    # Spurious-free dynamic range: strongest bin away from the fundamental
    # (excluding +-3 leakage bins and DC).
    mask = np.ones_like(spec, dtype=bool)
    mask[: 4] = False
    mask[max(0, peak_idx - 3) : peak_idx + 4] = False
    sfdr_db = 20 * np.log10(fundamental / spec[mask].max())

    total_slices = SINUS_FOOTPRINT.slices + DAC_FOOTPRINT.slices
    body = (
        f"LUT depth 32, address counter at {sg.sample_rate_hz / 1e6:.0f} MHz\n"
        f"fundamental        : {peak_hz / 1e3:8.1f} kHz   (paper: 500 kHz)\n"
        f"SFDR               : {sfdr_db:8.1f} dB\n"
        f"modulator clock    : {dac.modulator_hz / 1e6:8.1f} MHz (OSR {dac.modulator_hz / 500e3:.0f} vs tone)\n"
        f"slices w/ OPB intf : {SINUS_FOOTPRINT.slices + DAC_FOOTPRINT_WITH_OPB.slices:8d}\n"
        f"slices w/o OPB intf: {total_slices:8d}   (paper: 'ca. 150 slices')"
    )
    show("Figure 3: sinus generator with internal DA converter (measured)", body)

    assert peak_hz == 500_000.0 or abs(peak_hz - 500e3) < 0.02 * 500e3
    assert sfdr_db > 20.0  # the tone clearly dominates after the RC filter
    assert 100 <= total_slices <= 200
    assert DAC_FOOTPRINT.slices < DAC_FOOTPRINT_WITH_OPB.slices
    benchmark.extra_info.update(
        {
            "peak_khz": round(peak_hz / 1e3, 1),
            "sfdr_db": round(float(sfdr_db), 1),
            "slices_total": total_slices,
            "slices_saved_by_opb_removal": DAC_FOOTPRINT_WITH_OPB.slices - DAC_FOOTPRINT.slices,
        }
    )
