"""Figure 6 — optimization of one signal net by logic reallocation.

"The net shown in Figure 6 consumed ca. ___ uW before optimization, which
was reduced to ___ uW by the reallocation of logic functions to other
slices.  This corresponds to a reduction of 56 %."

Here the showcase is isolated: one high-activity net whose driver sits far
from its sinks is re-placed next to them and re-routed on short wires; the
reduction should land in the same tens-of-percent regime.
"""

from _util import show

from repro.fabric.device import get_device
from repro.fabric.grid import SliceCoord
from repro.fabric.routing import RoutingGraph
from repro.netlist.cells import SLICE_REG
from repro.netlist.netlist import Netlist
from repro.par.design import Design
from repro.par.placer import Placement
from repro.par.power_opt import optimize_single_net
from repro.par.router import RouterOptions, route
from repro.power.model import switching_power_w

CLOCK_MHZ = 50.0


def _build_showcase():
    """A hot 3-sink net placed badly: the driver sits across the die from
    its sinks, but is also anchored by local fan-in nets near its original
    location, so reallocation must trade the hot net against them — the
    situation of the paper's ce_2_sg net."""
    dev = get_device("XC3S400")
    nl = Netlist("fig6")
    driver = nl.add_cell("ce_driver", SLICE_REG)
    sinks = [nl.add_cell(f"sink{i}", SLICE_REG) for i in range(3)]
    anchors = [nl.add_cell(f"anchor{i}", SLICE_REG) for i in range(3)]
    others = [nl.add_cell(f"other{i}", SLICE_REG) for i in range(6)]
    nl.add_net("ce_2_sg", driver, sinks, activity=0.45)
    for i, anchor in enumerate(anchors):
        nl.add_net(f"fanin{i}", anchor, [driver], activity=0.25)
    for i, other in enumerate(others):
        nl.add_net(f"bg{i}", other, [sinks[i % 3]], activity=0.15)

    placement = Placement(dev, Design(nl, dev).grid.full_region)
    placement.assign("ce_driver", SliceCoord(6, 16, 0))
    for i, anchor in enumerate(anchors):
        placement.assign(anchor.name, SliceCoord(4 + i, 15, 0))
    for i, sink in enumerate(sinks):
        placement.assign(sink.name, SliceCoord(22 + i, 14 + i, 0))
    for i, other in enumerate(others):
        placement.assign(other.name, SliceCoord(18 + i, 10, 0))
    return nl, dev, placement


def test_fig6_single_net_optimization(benchmark):
    nl, dev, placement = _build_showcase()
    routing = route(nl, placement, dev, options=RouterOptions(mode="performance"))
    design = Design(nl, dev, placement=placement, routed_nets=routing.nets, graph=routing.graph)
    net = nl.net("ce_2_sg")
    before_uw = (
        switching_power_w(design.routed_nets["ce_2_sg"].capacitance_pf, net.activity, CLOCK_MHZ)
        * 1e6
    )

    record = benchmark.pedantic(
        lambda: optimize_single_net(design, net, clock_mhz=CLOCK_MHZ, max_candidate_sites=64),
        rounds=1,
        iterations=1,
    )

    body = (
        f"net {record.net!r} (communication rate {record.activity:.2f}):\n"
        f"  before reallocation: {before_uw:10.2f} uW\n"
        f"  after  reallocation: {record.power_after_uw:10.2f} uW\n"
        f"  reduction          : {record.reduction_pct:10.1f} %   (paper: 56 %)\n"
        f"  moved cells        : {', '.join(record.moved_cells) or '(none)'}"
    )
    show("Figure 6: optimized signal net (measured)", body)

    assert record.accepted
    # Same regime as the paper's 56 %.
    assert 30.0 < record.reduction_pct < 75.0
    assert design.graph.is_legal()
    benchmark.extra_info.update(
        {
            "before_uw": round(record.power_before_uw, 2),
            "after_uw": round(record.power_after_uw, 2),
            "reduction_pct": round(record.reduction_pct, 1),
            "paper_reduction_pct": 56.0,
        }
    )
