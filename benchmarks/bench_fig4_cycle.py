"""Figure 4 — tasks performed in one measurement cycle (t ~ 100 ms).

The paper's timeline: AD conversion of the measurement/reference signals,
data read by the MicroBlaze and amplitude/phase calculation, capacity and
level calculation, all inside the ~100 ms measurement period.  On the
reconfigurable system the module loads interleave with the tasks.
"""

from _util import show

from repro.app.system import FpgaReconfigSystem
from repro.reconfig.ports import Icap

LEVEL = 0.55


def test_fig4_measurement_cycle(benchmark):
    system = FpgaReconfigSystem(port=Icap())

    result = benchmark.pedantic(lambda: system.run_cycle(LEVEL), rounds=1, iterations=1)

    body = result.schedule.timeline()
    body += (
        f"\n\nlevel: true {LEVEL:.2f} -> measured {result.level_measured:.3f}"
        f"  (capacitance {result.capacitance_pf:.1f} pF)"
        f"\naverage power over the cycle: {result.avg_power_w * 1e3:.1f} mW"
    )
    show("Figure 4: one measurement cycle on the reconfigurable system", body)

    assert result.fits_period
    assert result.schedule.period_s == 0.100
    assert result.sample_time_s < 1e-3  # sampling is a small slice of the cycle
    assert result.level_measured == abs(result.level_measured)
    assert abs(result.level_measured - LEVEL) < 0.05
    # The Figure-4 task order.
    kinds = [t.kind for t in result.schedule.tasks]
    assert kinds.index("sample") < kinds.index("compute")
    benchmark.extra_info.update(
        {
            "cycle_busy_ms": round(result.cycle_busy_s * 1e3, 3),
            "reconfig_ms": round(result.reconfig_time_s * 1e3, 3),
            "processing_us": round(result.processing_time_s * 1e6, 2),
            "avg_power_mw": round(result.avg_power_w * 1e3, 2),
        }
    )
