"""Figure 5 — the reconfigurable system in the FPGA Editor.

The paper's screenshot shows the amp/phase module implemented inside the
dynamic region, the MicroBlaze static side, and the bus-macro interface on
the border.  Reproduced by actually implementing a module netlist in its
slot: placement confined to the slot, interface nets anchored to the
bus-macro slices, routing negotiated around the occupied static side —
then rendered as the utilization/routing reports and the ASCII occupancy
view.
"""

from _util import show

from repro.app.system import static_side_slices
from repro.fabric.device import get_device
from repro.netlist.blocks import BlockFootprint, block_netlist
from repro.netlist.generate import random_netlist
from repro.par.placer import PlacerOptions, place
from repro.par.report import floorplan_view, routing_report, utilization_report
from repro.par.router import route
from repro.par.slot_impl import implement_module_in_slot
from repro.reconfig.slots import plan_floorplan

#: Slot-flow representative of the amp/phase module (full 2100+ cells PAR
#: takes minutes in pure Python; the flow is size independent).
MODULE = BlockFootprint("amp_phase_rep", slices=220, mean_activity=0.12)


def test_fig5_module_in_slot(benchmark):
    device = get_device("XC3S400")
    floorplan = plan_floorplan(device, static_side_slices(), [320], [24])

    # The static side occupies its region first.
    static = random_netlist("static_side", 150, seed=9)
    static_placement = place(
        static, device, region=floorplan.static_region, options=PlacerOptions(steps=12)
    )
    static_routing = route(static, static_placement, device)

    module = block_netlist(MODULE, seed=12, interface_nets=16)
    impl = benchmark.pedantic(
        lambda: implement_module_in_slot(
            module,
            floorplan,
            placer_options=PlacerOptions(steps=15),
            occupied_graph=static_routing.graph,
        ),
        rounds=1,
        iterations=1,
    )

    body = utilization_report(impl.design).render()
    body += "\n\n" + routing_report(impl.design)
    body += "\n\n" + floorplan_view(impl.design, width=floorplan.slots[0].region.x_max + 1)
    show("Figure 5: module implemented in its slot (measured)", body)

    assert impl.routing_legal
    assert impl.anchor_count == 16
    slot_region = floorplan.slots[0].region
    for cell in impl.design.netlist.cells:
        assert slot_region.contains(impl.design.placement.coord(cell.name))
    # The bus-macro anchors really constrain the interface routing.
    assert impl.interface_wirelength > 0
    benchmark.extra_info.update(
        {
            "anchors": impl.anchor_count,
            "interface_wirelength_clbs": impl.interface_wirelength,
            "slot_columns": slot_region.width,
        }
    )
