"""Extension — battery life across the system variants.

The paper's framing: "normally it is not possible to exploit the
flexibility of FPGAs for low-power applications (e.g. battery-driven
applications)".  Measured: days of operation per AA-class cell for each
implementation, showing where each optimization (reconfiguration, reduced
clock, clock gating) moves the needle.
"""

from _util import show

from repro.app.system import (
    FpgaFullHardwareSystem,
    FpgaReconfigSystem,
    FpgaSoftwareSystem,
    MicrocontrollerSystem,
)
from repro.core.battery import BatteryModel, estimate_lifetimes
from repro.reconfig.ports import Icap


def test_battery_lifetimes(benchmark):
    battery = BatteryModel()  # 2.6 Ah AA-class lithium cell

    rows = benchmark.pedantic(
        lambda: estimate_lifetimes(
            {
                "mcu": MicrocontrollerSystem(),
                "fpga-software": FpgaSoftwareSystem(),
                "fpga-full-hw": FpgaFullHardwareSystem(),
                "reconfig": FpgaReconfigSystem(port=Icap()),
                "reconfig+gating": FpgaReconfigSystem(
                    port=Icap(), hw_clock_mhz=25.0, clock_gating=True
                ),
            },
            battery=battery,
        ),
        rounds=1,
        iterations=1,
    )

    lines = [f"{'variant':<18} {'avg power mW':>13} {'lifetime days':>14} {'cycles':>12}"]
    for r in rows:
        lines.append(
            f"{r.label:<18} {r.avg_power_mw:>13.2f} {r.lifetime_days:>14.1f} {r.cycles_total:>12,}"
        )
    show("Extension: battery life per implementation variant", "\n".join(lines))

    by_label = {r.label: r for r in rows}
    # Each optimization step extends lifetime vs the flat FPGA system.
    assert by_label["reconfig"].lifetime_days > by_label["fpga-full-hw"].lifetime_days
    assert by_label["reconfig+gating"].lifetime_days > by_label["reconfig"].lifetime_days
    # The MCU remains the battery champion — the paper's honest premise.
    assert by_label["mcu"].lifetime_days > by_label["reconfig+gating"].lifetime_days
    benchmark.extra_info.update(
        {r.label: round(r.lifetime_days, 1) for r in rows}
    )
