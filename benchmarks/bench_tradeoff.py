"""Conclusions — the whole-system cost/power/performance comparison across
implementation variants (MCU, FPGA+software, flat FPGA hardware,
reconfigurable FPGA with JCAP/ICAP, reconfigurable at reduced clock).
"""

from _util import show

from repro.app.system import (
    FpgaFullHardwareSystem,
    FpgaReconfigSystem,
    FpgaSoftwareSystem,
    MicrocontrollerSystem,
)
from repro.core.tradeoff import SystemVariant, compare_variants, format_table
from repro.reconfig.ports import Icap

LEVELS = (0.25, 0.6, 0.85)


def test_system_tradeoff(benchmark):
    def build_and_compare():
        variants = [
            SystemVariant("mcu", MicrocontrollerSystem()),
            SystemVariant("fpga-software", FpgaSoftwareSystem()),
            SystemVariant("fpga-full-hw", FpgaFullHardwareSystem()),
            SystemVariant("reconfig-jcap", FpgaReconfigSystem()),
            SystemVariant("reconfig-icap", FpgaReconfigSystem(port=Icap())),
            SystemVariant("reconfig-25mhz", FpgaReconfigSystem(port=Icap(), hw_clock_mhz=25.0)),
        ]
        return compare_variants(variants, levels=LEVELS)

    rows = benchmark.pedantic(build_and_compare, rounds=1, iterations=1)
    show("System trade-off across implementation variants", format_table(rows))

    by_label = {r.label: r for r in rows}
    # Every variant measures the level correctly.
    assert all(r.max_level_error < 0.06 for r in rows)
    # Device/cost chain: flat hardware needs the expensive XC3S1000, the
    # reconfigurable system the XC3S400.
    assert by_label["fpga-full-hw"].device == "XC3S1000"
    assert by_label["reconfig-icap"].device == "XC3S400"
    assert by_label["reconfig-icap"].bom_cost_usd < by_label["fpga-full-hw"].bom_cost_usd
    # Power: reconfig (ICAP) beats flat hardware; the reduced clock helps
    # further; the plain MCU remains the low-power champion (the paper
    # never claims otherwise — FPGAs buy flexibility).
    assert by_label["reconfig-icap"].avg_power_mw < by_label["fpga-full-hw"].avg_power_mw
    assert by_label["reconfig-25mhz"].avg_power_mw < by_label["reconfig-icap"].avg_power_mw
    assert by_label["mcu"].avg_power_mw < by_label["reconfig-25mhz"].avg_power_mw
    # Timing: JCAP overruns the 100 ms cycle, ICAP fits.
    assert not by_label["reconfig-jcap"].fits_period
    assert by_label["reconfig-icap"].fits_period
    benchmark.extra_info.update(
        {r.label: round(r.avg_power_mw, 2) for r in rows}
    )
